package core

import (
	"context"

	"soi/internal/checkpoint"
	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/jaccard"
	"soi/internal/rng"
	"soi/internal/worlds"
)

// ComputeWithScratch is Compute reusing a caller-owned scratch, the hot path
// for query serving: a server keeps a pool of scratches and avoids the
// per-query allocation of index.NewScratch.
func ComputeWithScratch(x *index.Index, v graph.NodeID, opts Options, s *index.Scratch) Result {
	return computeWithScratch(x, []graph.NodeID{v}, opts, s, newMetricsSet(telemetryFor(x, opts)))
}

// EstimateCostBudget is EstimateCostModel under cooperative cancellation and
// a wall-clock Budget: sampling stops when ctx is canceled or the budget's
// deadline is too near to fit another cascade. It returns the mean Jaccard
// distance over the achieved samples and how many completed. When the
// deadline truncates sampling but the budget's minimum is met, the result is
// usable and err is a *checkpoint.PartialError (matching checkpoint.ErrPartial)
// carrying the achieved count and the Theorem-2-style error bound; below the
// minimum the error is hard. A zero Budget makes this EstimateCostModel with
// ctx checks.
func EstimateCostBudget(ctx context.Context, g *graph.Graph, seeds, set []graph.NodeID, samples int, seed uint64, model index.Model, budget checkpoint.Budget) (float64, int, error) {
	if samples <= 0 {
		return -1, 0, nil
	}
	// A Runner with no checkpoint path is just the budget gate: no flusher
	// starts and Finish is a no-op, but Gate/Partial give the same
	// deadline-degradation semantics as the …Resumable paths.
	r, _, err := checkpoint.Start(checkpoint.Config{Budget: budget}, 0, samples, nil)
	if err != nil {
		return 0, 0, err
	}
	master := rng.New(seed)
	visited := make([]bool, g.NumNodes())
	var buf []graph.NodeID
	total := 0.0
	truncated := false
	for i := 0; i < samples; i++ {
		if err := ctx.Err(); err != nil {
			return 0, r.DoneCount(), err
		}
		if err := r.Gate(); err != nil {
			truncated = true
			break
		}
		rs := master.Split(uint64(i))
		if model == index.LT {
			w := worlds.SampleLT(g, rs)
			buf = w.ReachableFromSet(seeds, visited, buf[:0])
		} else {
			buf = worlds.SampleCascadeFromSet(g, seeds, rs, visited, buf[:0])
		}
		total += jaccard.Distance(set, buf)
		r.MarkDone(i, nil)
	}
	achieved := r.DoneCount()
	if !truncated {
		return total / float64(samples), achieved, nil
	}
	perr := r.Partial(samples)
	var pe *checkpoint.PartialError
	if !asPartial(perr, &pe) {
		return 0, achieved, perr // deadline hit below the budget minimum
	}
	return total / float64(achieved), achieved, perr
}

func asPartial(err error, out **checkpoint.PartialError) bool {
	pe, ok := err.(*checkpoint.PartialError)
	if ok {
		*out = pe
	}
	return ok
}

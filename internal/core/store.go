package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"soi/internal/atomicfile"
	"soi/internal/fault"
	"soi/internal/graph"
)

// Persistent sphere store — the paper's §8 deployment scenario: "having the
// spheres of influence precomputed and stored in an index might provide a
// direct solution to several variants of influence maximization... when the
// next campaign is run, we can again reuse the same spheres of influence."
//
// The store serializes the per-node typical cascades with their cost
// estimates; a later process loads them and runs any of the max-cover
// variants (plain, weighted, budgeted) without touching the sampler.
//
// Layout (little endian):
//
//	magic   [8]byte "SOISPH02"
//	nodes   uint32            (spheres stored for every node, in id order)
//	per node:
//	  setLen       uint32
//	  set          [setLen]int32
//	  sampleCost   float64
//	  expectedCost float64
//	crc     uint32            CRC32-C (Castagnoli) of every preceding byte
//
// Version history: v01 ("SOISPH01") is the same layout without the CRC
// footer; LoadSpheres still accepts it, SaveSpheres always produces v02.

var (
	sphereMagicV1 = [8]byte{'S', 'O', 'I', 'S', 'P', 'H', '0', '1'}
	sphereMagicV2 = [8]byte{'S', 'O', 'I', 'S', 'P', 'H', '0', '2'}
)

// sphereCastagnoli is the CRC32-C table for the sphere store.
var sphereCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// SaveSpheres writes the results of ComputeAll in the v02 (checksummed)
// format. Results must be indexed by node id (results[v].Seeds == [v]), as
// ComputeAll produces.
func SaveSpheres(w io.Writer, results []Result) error {
	bw := bufio.NewWriter(w)
	h := crc32.New(sphereCastagnoli)
	body := io.MultiWriter(bw, h)
	if err := binary.Write(body, binary.LittleEndian, sphereMagicV2); err != nil {
		return err
	}
	if err := binary.Write(body, binary.LittleEndian, uint32(len(results))); err != nil {
		return err
	}
	for v := range results {
		r := &results[v]
		if len(r.Seeds) != 1 || r.Seeds[0] != graph.NodeID(v) {
			return fmt.Errorf("core: result %d is not the single-source sphere of node %d", v, v)
		}
		if err := binary.Write(body, binary.LittleEndian, uint32(len(r.Set))); err != nil {
			return err
		}
		if len(r.Set) > 0 {
			if err := binary.Write(body, binary.LittleEndian, r.Set); err != nil {
				return err
			}
		}
		if err := binary.Write(body, binary.LittleEndian, r.SampleCost); err != nil {
			return err
		}
		if err := binary.Write(body, binary.LittleEndian, r.ExpectedCost); err != nil {
			return err
		}
	}
	// Footer: checksum of everything above, itself excluded.
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSpheres reads a sphere store (v02 with checksum verification, or the
// legacy v01 format without). Results are indexed by node id; timing fields
// are zero (they describe the original computation, not the load).
func LoadSpheres(r io.Reader) ([]Result, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("core: read sphere magic: %w", err)
	}
	var h hash.Hash32
	var body io.Reader = br
	switch m {
	case sphereMagicV1:
		// Legacy format: no checksum to verify.
	case sphereMagicV2:
		h = crc32.New(sphereCastagnoli)
		h.Write(m[:]) // the writer hashed the magic too
		body = io.TeeReader(br, h)
	default:
		return nil, fmt.Errorf("core: bad sphere-store magic %q", m[:])
	}
	out, err := loadSphereBody(body)
	if err != nil {
		return nil, err
	}
	if h != nil {
		var stored uint32
		if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("core: read sphere checksum footer: %w", err)
		}
		if sum := h.Sum32(); sum != stored {
			return nil, fmt.Errorf("core: sphere-store checksum mismatch: file carries %08x, payload hashes to %08x (corrupted store)", stored, sum)
		}
		if _, err := br.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("core: trailing data after sphere-store checksum footer")
		}
	}
	return out, nil
}

// loadSphereBody parses the version-independent payload.
func loadSphereBody(br io.Reader) ([]Result, error) {
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxNodes = 1 << 28
	if n > maxNodes {
		return nil, fmt.Errorf("core: implausible node count %d", n)
	}
	// Never trust the header for large allocations: grow incrementally so a
	// corrupted count fails on the first missing record instead of OOMing.
	out := make([]Result, 0, min32(n, 1<<16))
	for v := uint32(0); v < n; v++ {
		var setLen uint32
		if err := binary.Read(br, binary.LittleEndian, &setLen); err != nil {
			return nil, err
		}
		if setLen > n {
			return nil, fmt.Errorf("core: node %d sphere size %d exceeds node count", v, setLen)
		}
		set := make([]graph.NodeID, 0, min32(setLen, 1<<14))
		prev := graph.NodeID(-1)
		for j := uint32(0); j < setLen; j++ {
			var e graph.NodeID
			if err := binary.Read(br, binary.LittleEndian, &e); err != nil {
				return nil, err
			}
			if e < 0 || uint32(e) >= n {
				return nil, fmt.Errorf("core: node %d sphere contains out-of-range member %d", v, e)
			}
			if e <= prev {
				return nil, fmt.Errorf("core: node %d sphere not strictly sorted", v)
			}
			prev = e
			set = append(set, e)
		}
		var sampleCost, expectedCost float64
		if err := binary.Read(br, binary.LittleEndian, &sampleCost); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &expectedCost); err != nil {
			return nil, err
		}
		if math.IsNaN(sampleCost) || sampleCost < 0 || sampleCost > 1 {
			return nil, fmt.Errorf("core: node %d has invalid sample cost %v", v, sampleCost)
		}
		if math.IsNaN(expectedCost) || expectedCost < -1 || expectedCost > 1 {
			return nil, fmt.Errorf("core: node %d has invalid expected cost %v", v, expectedCost)
		}
		out = append(out, Result{
			Seeds:        []graph.NodeID{graph.NodeID(v)},
			Set:          set,
			SampleCost:   sampleCost,
			ExpectedCost: expectedCost,
		})
	}
	return out, nil
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// SaveSpheresFile writes the sphere store to path atomically (temp file +
// rename + directory sync), so an interrupted save never leaves a truncated
// store behind.
func SaveSpheresFile(path string, results []Result) error {
	if err := fault.Hit(fault.StoreSave); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		return SaveSpheres(w, results)
	})
}

// LoadSpheresFile reads a sphere store from path.
func LoadSpheresFile(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSpheres(f)
}

// RepairSpheresFile rewrites a sphere store whose payload still parses into
// a clean v02 file at dst, returning the sphere count. This recovers the
// corruption classes a single trailing checksum makes fatal — a flipped or
// truncated footer, trailing garbage, or a legacy v01 file — without
// recomputing anything. Payload corruption is unrecoverable (the records are
// not independently checksummed): rebuild with sphere -all -store instead.
func RepairSpheresFile(src, dst string) (int, error) {
	f, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var m [8]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return 0, fmt.Errorf("core: read sphere magic: %w", err)
	}
	if m != sphereMagicV1 && m != sphereMagicV2 {
		return 0, fmt.Errorf("core: bad sphere-store magic %q", m[:])
	}
	out, err := loadSphereBody(br)
	if err != nil {
		return 0, fmt.Errorf("core: sphere-store payload is unrecoverable (%w); rebuild with sphere -all -store", err)
	}
	return len(out), SaveSpheresFile(dst, out)
}

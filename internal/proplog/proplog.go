// Package proplog models user-activity propagation logs — the input from
// which influence probabilities are learnt — and provides a synthetic log
// generator.
//
// The paper learns edge probabilities for Digg/Flixster/Twitter from logs of
// (user, item, timestamp) actions. Those proprietary logs are unavailable,
// so this package substitutes them: pick a ground-truth influence
// probability for every edge, simulate item cascades under the IC model over
// that ground truth, and emit the activations as a log. The learners in
// internal/probs then consume the log exactly as they would a real one —
// with the bonus that the ground truth is known, so learner accuracy is
// testable (see DESIGN.md §3).
package proplog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"soi/internal/cascade"
	"soi/internal/graph"
	"soi/internal/rng"
)

// Event is one user action: user performed item's action at the given
// discrete time.
type Event struct {
	User graph.NodeID
	Item int32
	Time int32
}

// Log is an immutable propagation log with per-item access.
type Log struct {
	numUsers int
	numItems int
	events   []Event // sorted by (Item, Time, User)
	itemOff  []int32 // CSR offsets into events by item
}

// NewLog builds a Log from events. numUsers bounds the user id space.
// Events are sorted internally; duplicates (same user and item) keep only
// the earliest occurrence, matching the "first activation" semantics of the
// IC model.
func NewLog(numUsers int, events []Event) (*Log, error) {
	maxItem := int32(-1)
	for _, e := range events {
		if e.User < 0 || int(e.User) >= numUsers {
			return nil, fmt.Errorf("proplog: user %d out of range [0,%d)", e.User, numUsers)
		}
		if e.Item < 0 {
			return nil, fmt.Errorf("proplog: negative item %d", e.Item)
		}
		if e.Time < 0 {
			return nil, fmt.Errorf("proplog: negative time %d", e.Time)
		}
		if e.Item > maxItem {
			maxItem = e.Item
		}
	}
	evs := append([]Event(nil), events...)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Item != evs[j].Item {
			return evs[i].Item < evs[j].Item
		}
		if evs[i].Time != evs[j].Time {
			return evs[i].Time < evs[j].Time
		}
		return evs[i].User < evs[j].User
	})
	// Drop later duplicates of the same (item, user).
	dedup := evs[:0]
	var seen map[graph.NodeID]bool
	lastItem := int32(-1)
	for _, e := range evs {
		if e.Item != lastItem {
			seen = make(map[graph.NodeID]bool)
			lastItem = e.Item
		}
		if seen[e.User] {
			continue
		}
		seen[e.User] = true
		dedup = append(dedup, e)
	}
	evs = dedup

	l := &Log{numUsers: numUsers, numItems: int(maxItem + 1), events: evs}
	l.itemOff = make([]int32, l.numItems+1)
	for _, e := range evs {
		l.itemOff[e.Item+1]++
	}
	for i := 1; i <= l.numItems; i++ {
		l.itemOff[i] += l.itemOff[i-1]
	}
	return l, nil
}

// NumUsers returns the size of the user id space.
func (l *Log) NumUsers() int { return l.numUsers }

// NumItems returns the number of distinct items (actions).
func (l *Log) NumItems() int { return l.numItems }

// NumEvents returns the total number of (deduplicated) events.
func (l *Log) NumEvents() int { return len(l.events) }

// ItemEvents returns the events of one item, sorted by time. The slice
// aliases internal storage.
func (l *Log) ItemEvents(item int32) []Event {
	return l.events[l.itemOff[item]:l.itemOff[item+1]]
}

// GenerateConfig controls synthetic log generation.
type GenerateConfig struct {
	// Items is the number of independent item cascades to simulate.
	Items int
	// SeedsPerItem is how many initial adopters each item starts with.
	SeedsPerItem int
	// Seed drives the deterministic simulation.
	Seed uint64
}

// Generate simulates cfg.Items IC cascades over the ground-truth graph g
// and returns them as a propagation log. Items whose cascade never leaves
// the seeds still appear in the log (a real log has mostly-dead items too).
func Generate(g *graph.Graph, cfg GenerateConfig) (*Log, error) {
	if cfg.Items < 1 {
		return nil, fmt.Errorf("proplog: Items must be >= 1, got %d", cfg.Items)
	}
	if cfg.SeedsPerItem < 1 {
		return nil, fmt.Errorf("proplog: SeedsPerItem must be >= 1, got %d", cfg.SeedsPerItem)
	}
	if cfg.SeedsPerItem > g.NumNodes() {
		return nil, fmt.Errorf("proplog: SeedsPerItem %d exceeds node count %d", cfg.SeedsPerItem, g.NumNodes())
	}
	master := rng.New(cfg.Seed)
	visited := make([]bool, g.NumNodes())
	var events []Event
	for item := 0; item < cfg.Items; item++ {
		r := master.Split(uint64(item))
		seeds := make([]graph.NodeID, 0, cfg.SeedsPerItem)
		chosen := make(map[graph.NodeID]bool, cfg.SeedsPerItem)
		for len(seeds) < cfg.SeedsPerItem {
			v := graph.NodeID(r.Intn(g.NumNodes()))
			if !chosen[v] {
				chosen[v] = true
				seeds = append(seeds, v)
			}
		}
		for _, a := range cascade.Simulate(g, seeds, r, visited) {
			events = append(events, Event{User: a.Node, Item: int32(item), Time: a.Step})
		}
	}
	return NewLog(g.NumNodes(), events)
}

// WriteTSV writes the log as "user item time" lines.
func (l *Log) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# users=%d items=%d events=%d\n", l.numUsers, l.numItems, len(l.events)); err != nil {
		return err
	}
	for _, e := range l.events {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", e.User, e.Item, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses a log written by WriteTSV (or any "user item time" file).
func ReadTSV(r io.Reader, numUsers int) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("proplog: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		user, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("proplog: line %d: bad user: %v", lineNo, err)
		}
		item, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("proplog: line %d: bad item: %v", lineNo, err)
		}
		tm, err := strconv.ParseInt(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("proplog: line %d: bad time: %v", lineNo, err)
		}
		events = append(events, Event{User: graph.NodeID(user), Item: int32(item), Time: int32(tm)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewLog(numUsers, events)
}

package proplog

import (
	"bytes"
	"testing"

	"soi/internal/graph"
)

func lineGraph(t testing.TB, n int, p float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), p)
	}
	return b.MustBuild()
}

func TestNewLogSortsAndDedups(t *testing.T) {
	events := []Event{
		{User: 2, Item: 1, Time: 5},
		{User: 1, Item: 0, Time: 3},
		{User: 1, Item: 0, Time: 7}, // duplicate (item 0, user 1): dropped
		{User: 0, Item: 0, Time: 1},
		{User: 0, Item: 1, Time: 0},
	}
	l, err := NewLog(3, events)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumUsers() != 3 || l.NumItems() != 2 {
		t.Fatalf("users=%d items=%d", l.NumUsers(), l.NumItems())
	}
	if l.NumEvents() != 4 {
		t.Fatalf("events=%d, want 4 after dedup", l.NumEvents())
	}
	it0 := l.ItemEvents(0)
	if len(it0) != 2 || it0[0].User != 0 || it0[1].User != 1 || it0[1].Time != 3 {
		t.Fatalf("item 0 events: %+v", it0)
	}
	it1 := l.ItemEvents(1)
	if len(it1) != 2 || it1[0].Time > it1[1].Time {
		t.Fatalf("item 1 events unsorted: %+v", it1)
	}
}

func TestNewLogValidation(t *testing.T) {
	cases := []Event{
		{User: -1, Item: 0, Time: 0},
		{User: 5, Item: 0, Time: 0},
		{User: 0, Item: -1, Time: 0},
		{User: 0, Item: 0, Time: -2},
	}
	for _, e := range cases {
		if _, err := NewLog(3, []Event{e}); err == nil {
			t.Errorf("accepted invalid event %+v", e)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := lineGraph(t, 10, 0.5)
	cfg := GenerateConfig{Items: 20, SeedsPerItem: 1, Seed: 4}
	a, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("nondeterministic event count: %d vs %d", a.NumEvents(), b.NumEvents())
	}
	for i := int32(0); i < int32(a.NumItems()); i++ {
		ea, eb := a.ItemEvents(i), b.ItemEvents(i)
		if len(ea) != len(eb) {
			t.Fatalf("item %d event count differs", i)
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("item %d event %d differs: %+v vs %+v", i, j, ea[j], eb[j])
			}
		}
	}
}

func TestGenerateRespectsICStructure(t *testing.T) {
	g := lineGraph(t, 8, 0.6)
	l, err := Generate(g, GenerateConfig{Items: 100, SeedsPerItem: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for item := int32(0); item < int32(l.NumItems()); item++ {
		events := l.ItemEvents(item)
		if len(events) == 0 {
			t.Fatalf("item %d has no events (seed must appear)", item)
		}
		// On a line graph every activation at time t>0 must be the
		// successor of an activation at time t-1.
		timeOf := map[graph.NodeID]int32{}
		for _, e := range events {
			timeOf[e.User] = e.Time
		}
		for _, e := range events {
			if e.Time == 0 {
				continue
			}
			prev := e.User - 1
			pt, ok := timeOf[prev]
			if !ok || pt != e.Time-1 {
				t.Fatalf("item %d: node %d active at %d without parent activation", item, e.User, e.Time)
			}
		}
	}
}

func TestGenerateSeedCount(t *testing.T) {
	g := lineGraph(t, 20, 0.1)
	l, err := Generate(g, GenerateConfig{Items: 50, SeedsPerItem: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for item := int32(0); item < int32(l.NumItems()); item++ {
		seeds := 0
		for _, e := range l.ItemEvents(item) {
			if e.Time == 0 {
				seeds++
			}
		}
		if seeds != 3 {
			t.Fatalf("item %d has %d seeds, want 3", item, seeds)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	g := lineGraph(t, 5, 0.5)
	for _, cfg := range []GenerateConfig{
		{Items: 0, SeedsPerItem: 1},
		{Items: 1, SeedsPerItem: 0},
		{Items: 1, SeedsPerItem: 6},
	} {
		if _, err := Generate(g, cfg); err == nil {
			t.Errorf("accepted config %+v", cfg)
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g := lineGraph(t, 10, 0.5)
	l, err := Generate(g, GenerateConfig{Items: 30, SeedsPerItem: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := ReadTSV(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l2.NumEvents() != l.NumEvents() || l2.NumItems() != l.NumItems() {
		t.Fatalf("round trip changed log: %d/%d vs %d/%d",
			l2.NumEvents(), l2.NumItems(), l.NumEvents(), l.NumItems())
	}
}

package sketch

import (
	"bytes"
	"testing"

	"soi/internal/graph"
)

// FuzzReadSketch feeds arbitrary bytes to the SOISKC01 reader: it must
// never panic or allocate unboundedly, and anything it accepts must be
// structurally sound — offsets monotone and in range, per-node rank lists
// strictly ascending and at most k long — so estimates computed from it
// cannot crash or silently drift. The seed corpus mutates every header
// field plus offsets, ranks, and the checksum footer, mirroring the v03
// index fuzz harness.
func FuzzReadSketch(f *testing.F) {
	var buf bytes.Buffer
	if _, err := testSketch(f).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	clean := buf.Bytes()
	f.Add(clean)
	mutate := func(pos int, val byte) {
		if pos < len(clean) {
			d := append([]byte(nil), clean...)
			d[pos] ^= val
			f.Add(d)
		}
	}
	mutate(0, 0x01)            // magic
	mutate(8, 0x01)            // nodes
	mutate(12, 0xFF)           // worlds
	mutate(16, 0xFF)           // live
	mutate(20, 0x01)           // k
	mutate(24, 0xFF)           // seed
	mutate(32, 0xFF)           // index fingerprint
	mutate(44, 0x01)           // an interior CSR offset
	mutate(len(clean)/2, 0xFF) // a rank byte
	mutate(len(clean)-1, 0xFF) // checksum footer
	f.Add(clean[:40])          // truncated at the offset table
	f.Add(clean[:len(clean)-4])
	f.Add(append(append([]byte(nil), clean...), 0)) // trailing byte
	f.Add([]byte("SOISKC01"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.K() < 2 {
			t.Fatalf("accepted sketch with k=%d", s.K())
		}
		for v := 0; v < s.Nodes(); v++ {
			ranks := s.NodeRanks(graph.NodeID(v))
			if len(ranks) > s.K() {
				t.Fatalf("node %d: %d ranks exceed k=%d", v, len(ranks), s.K())
			}
			for i := 1; i < len(ranks); i++ {
				if ranks[i] <= ranks[i-1] {
					t.Fatalf("node %d: accepted non-ascending ranks", v)
				}
			}
			_ = s.EstimateSphereSize(graph.NodeID(v))
		}
		_ = s.EstimateSpread(nil)
	})
}

package sketch

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"soi/internal/graph"
	"soi/internal/index"
)

// randomGraph builds a seeded random digraph: every ordered pair gets an
// edge with probability density, with a random activation probability.
func randomGraph(t testing.TB, n int, density float64, seed int64) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && r.Float64() < density {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+0.8*r.Float64())
			}
		}
	}
	return b.MustBuild()
}

func buildIndex(t testing.TB, g *graph.Graph, ell int, seed uint64) *index.Index {
	t.Helper()
	x, err := index.Build(g, index.Options{Samples: ell, Seed: seed, TransitiveReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func mustBuild(t *testing.T, x *index.Index, opts Options) *Sketch {
	t.Helper()
	s, err := Build(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func serialize(t *testing.T, s *Sketch) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBuildInvariants checks the structural contract of a built sketch:
// CSR offsets monotone, per-node rank lists strictly ascending and at most
// k long, and every world live on an eagerly built index.
func TestBuildInvariants(t *testing.T) {
	g := randomGraph(t, 40, 0.1, 1)
	x := buildIndex(t, g, 16, 7)
	s := mustBuild(t, x, Options{K: 8, Seed: 3})

	if s.Nodes() != g.NumNodes() || s.Worlds() != 16 || s.LiveWorlds() != 16 {
		t.Fatalf("shape: nodes=%d worlds=%d live=%d", s.Nodes(), s.Worlds(), s.LiveWorlds())
	}
	if s.IndexFingerprint() != x.Fingerprint() {
		t.Fatalf("fingerprint %016x != index %016x", s.IndexFingerprint(), x.Fingerprint())
	}
	for v := 0; v < s.Nodes(); v++ {
		ranks := s.NodeRanks(graph.NodeID(v))
		if len(ranks) == 0 || len(ranks) > s.K() {
			t.Fatalf("node %d: %d ranks, want 1..%d", v, len(ranks), s.K())
		}
		for i := 1; i < len(ranks); i++ {
			if ranks[i] <= ranks[i-1] {
				t.Fatalf("node %d ranks not strictly ascending at %d", v, i)
			}
		}
	}
}

// TestBuildDeterministicAcrossWorkers: the sketch bytes must not depend on
// the parallelism used to build it.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	g := randomGraph(t, 60, 0.08, 2)
	x := buildIndex(t, g, 13, 11)
	want := serialize(t, mustBuild(t, x, Options{K: 6, Seed: 5, Workers: 1}))
	for _, w := range []int{2, 3, 8} {
		got := serialize(t, mustBuild(t, x, Options{K: 6, Seed: 5, Workers: w}))
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d produced different sketch bytes", w)
		}
	}
}

func TestBuildRejectsK1(t *testing.T) {
	g := randomGraph(t, 5, 0.3, 3)
	x := buildIndex(t, g, 2, 1)
	if _, err := Build(x, Options{K: 1}); err == nil {
		t.Fatal("k=1 accepted; the estimator needs k >= 2")
	}
}

// randomRankList makes a strictly ascending list of ranks drawn from a
// small universe so lists share elements (exercising dedup).
func randomRankList(r *rand.Rand, maxLen int) []uint64 {
	set := map[uint64]bool{}
	for i := r.Intn(maxLen + 1); i > 0; i-- {
		set[uint64(r.Intn(200))] = true
	}
	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// TestMergeAlgebra property-checks the sketch-union algebra the combined
// build and the greedy rely on: commutative, associative, idempotent, nil
// as identity, output truncated to k and strictly ascending.
func TestMergeAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		k := 1 + r.Intn(12)
		a, b, c := randomRankList(r, 15), randomRankList(r, 15), randomRankList(r, 15)

		ab, ba := Merge(k, a, b), Merge(k, b, a)
		if !slices.Equal(ab, ba) {
			t.Fatalf("k=%d: Merge not commutative:\n a=%v\n b=%v\n ab=%v\n ba=%v", k, a, b, ab, ba)
		}
		if got := Merge(k, a, a); !slices.Equal(got, a[:min(k, len(a))]) {
			t.Fatalf("k=%d: Merge not idempotent: a=%v got=%v", k, a, got)
		}
		if got := Merge(k, a, nil); !slices.Equal(got, a[:min(k, len(a))]) {
			t.Fatalf("k=%d: nil not identity: a=%v got=%v", k, a, got)
		}
		left := Merge(k, Merge(k, a, b), c)
		right := Merge(k, a, Merge(k, b, c))
		if !slices.Equal(left, right) {
			t.Fatalf("k=%d: Merge not associative", k)
		}
		if len(ab) > k {
			t.Fatalf("k=%d: merge overflowed to %d", k, len(ab))
		}
		for i := 1; i < len(ab); i++ {
			if ab[i] <= ab[i-1] {
				t.Fatalf("merge output not strictly ascending: %v", ab)
			}
		}
	}
}

// TestMergeOrderInsensitive folds several lists in random orders and checks
// the result never depends on fold order (the property that makes the
// combined per-node sketch independent of world arrival order).
func TestMergeOrderInsensitive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		k := 2 + r.Intn(10)
		lists := make([][]uint64, 2+r.Intn(5))
		for i := range lists {
			lists[i] = randomRankList(r, 12)
		}
		fold := func(order []int) []uint64 {
			var acc []uint64
			for _, i := range order {
				acc = Merge(k, acc, lists[i])
			}
			return acc
		}
		order := make([]int, len(lists))
		for i := range order {
			order[i] = i
		}
		want := fold(order)
		for p := 0; p < 4; p++ {
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			if got := fold(order); !slices.Equal(got, want) {
				t.Fatalf("fold order %v changed the merge: got=%v want=%v", order, got, want)
			}
		}
	}
}

// TestExhaustiveSketchExact: with k >= n*ell no rank is ever evicted, so the
// sketch holds the full reachability multiset and every estimate must equal
// the exact average cascade size bit for bit.
func TestExhaustiveSketchExact(t *testing.T) {
	const n, ell = 12, 16
	g := randomGraph(t, n, 0.15, 4)
	x := buildIndex(t, g, ell, 9)
	s := mustBuild(t, x, Options{K: n * ell, Seed: 13})

	scratch := x.NewScratch()
	exact := func(seeds []graph.NodeID) float64 {
		total := 0
		for i := 0; i < ell; i++ {
			total += x.CascadeSizeFromSet(seeds, i, scratch)
		}
		return float64(total) / float64(ell)
	}

	for v := 0; v < n; v++ {
		want := exact([]graph.NodeID{graph.NodeID(v)})
		if got := s.EstimateSphereSize(graph.NodeID(v)); got != want {
			t.Fatalf("node %d: sphere size %v != exact %v", v, got, want)
		}
	}
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		var seeds []graph.NodeID
		for v := 0; v < n; v++ {
			if r.Intn(3) == 0 {
				seeds = append(seeds, graph.NodeID(v))
			}
		}
		if len(seeds) == 0 {
			continue
		}
		want := exact(seeds)
		if got := s.EstimateSpread(seeds); got != want {
			t.Fatalf("seeds %v: spread %v != exact %v", seeds, got, want)
		}
	}
	if got := s.EstimateSpread(nil); got != 0 {
		t.Fatalf("empty seed set: spread %v, want 0", got)
	}
}

// TestRelabelInvariance: sketching a relabeled copy of a deterministic
// graph with the correspondingly relabeled rank function yields the same
// per-node sketches, and exhaustive sketches give identical estimates for
// corresponding nodes. (Deterministic edges keep the sampled worlds equal
// on both sides regardless of edge order.)
func TestRelabelInvariance(t *testing.T) {
	const n, ell = 20, 4
	r := rand.New(rand.NewSource(31))
	perm := r.Perm(n)

	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && r.Float64() < 0.12 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	b1, b2 := graph.NewBuilder(n), graph.NewBuilder(n)
	for _, e := range edges {
		b1.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]), 1)
		b2.AddEdge(graph.NodeID(perm[e[0]]), graph.NodeID(perm[e[1]]), 1)
	}
	x1 := buildIndex(t, b1.MustBuild(), ell, 5)
	x2 := buildIndex(t, b2.MustBuild(), ell, 6)

	// Rank-pass level: rank2(perm(v)) = rank1(v) must give node-identical
	// world sketches.
	rank1 := func(v int32) uint64 { return uint64(v)*0x9E3779B9 + 1 }
	inv := make([]int32, n)
	for v, p := range perm {
		inv[p] = int32(v)
	}
	rank2 := func(v int32) uint64 { return rank1(inv[v]) }
	var sc1, sc2 index.RankScratch
	for i := 0; i < ell; i++ {
		comp1, ok1 := x1.WorldReachRanks(i, n, rank1, &sc1)
		comp2, ok2 := x2.WorldReachRanks(i, n, rank2, &sc2)
		if !ok1 || !ok2 {
			t.Fatalf("world %d not available", i)
		}
		for v := 0; v < n; v++ {
			if !slices.Equal(sc1.List(comp1[v]), sc2.List(comp2[perm[v]])) {
				t.Fatalf("world %d node %d: sketch differs under relabeling", i, v)
			}
		}
	}

	// Estimator level: exhaustive sketches are exact counts, so estimates
	// must agree across the relabeling even though the rank hashes differ.
	s1 := mustBuild(t, x1, Options{K: n * ell, Seed: 1})
	s2 := mustBuild(t, x2, Options{K: n * ell, Seed: 2})
	for v := 0; v < n; v++ {
		a, b := s1.EstimateSphereSize(graph.NodeID(v)), s2.EstimateSphereSize(graph.NodeID(perm[v]))
		if a != b {
			t.Fatalf("node %d: estimate %v != relabeled %v", v, a, b)
		}
	}
}

func TestRelativeErrorShrinksWithK(t *testing.T) {
	if RelativeError(1, 0.05) != 1 {
		t.Fatal("k<2 must saturate at 1")
	}
	prev := RelativeError(2, 0.05)
	for _, k := range []int{4, 16, 64, 256, 4096} {
		e := RelativeError(k, 0.05)
		if e >= prev && prev < 1 {
			t.Fatalf("RelativeError not decreasing at k=%d: %v >= %v", k, e, prev)
		}
		prev = e
	}
	if e := RelativeError(1<<20, 0.05); e > 0.01 {
		t.Fatalf("huge k should be near-exact, got eps=%v", e)
	}
}

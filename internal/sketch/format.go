package sketch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"soi/internal/atomicfile"
	"soi/internal/fault"
)

// SOISKC01 on-disk format (little endian):
//
//	magic   [8]byte "SOISKC01"
//	nodes   uint32
//	worlds  uint32            (source index worlds, quarantined included)
//	live    uint32            (worlds that contributed ranks)
//	k       uint32
//	seed    uint64            (rank-hash seed)
//	indexFP uint64            (Fingerprint of the source index)
//	off     [nodes+1]uint32   (CSR offsets; off[0] = 0, non-decreasing,
//	                           per-node count <= k)
//	ranks   [off[nodes]]uint64 (strictly ascending within each node)
//	crc     uint32            CRC32-C (Castagnoli) of every preceding byte
//
// A sketch is an estimator, so silent corruption would not crash — it
// would mis-estimate. The reader therefore validates everything it can
// structurally (offsets, per-node bounds, rank order, trailing bytes) and
// verifies the checksum unconditionally: a corrupt file fails at open,
// never at query time.

var sketchMagic = [8]byte{'S', 'O', 'I', 'S', 'K', 'C', '0', '1'}

var sketchCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the sketch in the SOISKC01 format.
func (s *Sketch) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	h := crc32.New(sketchCastagnoli)
	body := io.MultiWriter(bw, h)
	write := func(v any) error { return binary.Write(body, binary.LittleEndian, v) }
	if err := write(sketchMagic); err != nil {
		return cw.n, err
	}
	for _, u := range []uint32{uint32(s.nodes), uint32(s.worlds), uint32(s.live), uint32(s.k)} {
		if err := write(u); err != nil {
			return cw.n, err
		}
	}
	if err := write(s.seed); err != nil {
		return cw.n, err
	}
	if err := write(s.fp); err != nil {
		return cw.n, err
	}
	for _, o := range s.off {
		if err := write(uint32(o)); err != nil {
			return cw.n, err
		}
	}
	if err := write(s.ranks); err != nil {
		return cw.n, err
	}
	// Footer: checksum of everything above, itself excluded.
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// maxNodes mirrors the sphere store's plausibility cap.
const maxNodes = 1 << 28

// Read deserializes a SOISKC01 sketch, verifying structure and checksum.
// The loaded sketch carries no telemetry; attach one with SetTelemetry.
func Read(r io.Reader) (*Sketch, error) {
	br := bufio.NewReader(r)
	h := crc32.New(sketchCastagnoli)
	body := io.TeeReader(br, h)
	var m [8]byte
	if err := binary.Read(body, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("sketch: read magic: %w", err)
	}
	if m != sketchMagic {
		return nil, fmt.Errorf("sketch: bad magic %q", m[:])
	}
	var nodes, worlds, live, k uint32
	var seed, fp uint64
	for _, dst := range []any{&nodes, &worlds, &live, &k} {
		if err := binary.Read(body, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("sketch: read header: %w", err)
		}
	}
	if err := binary.Read(body, binary.LittleEndian, &seed); err != nil {
		return nil, fmt.Errorf("sketch: read header: %w", err)
	}
	if err := binary.Read(body, binary.LittleEndian, &fp); err != nil {
		return nil, fmt.Errorf("sketch: read header: %w", err)
	}
	if nodes > maxNodes {
		return nil, fmt.Errorf("sketch: implausible node count %d", nodes)
	}
	if live > worlds {
		return nil, fmt.Errorf("sketch: live worlds %d exceed total %d", live, worlds)
	}
	if k < 2 {
		return nil, fmt.Errorf("sketch: k %d below minimum 2", k)
	}
	// Never trust the header for large allocations: grow incrementally so a
	// corrupted count fails on the first missing record instead of OOMing.
	off := make([]int32, 0, minU32(nodes+1, 1<<16))
	prev := uint32(0)
	for v := uint32(0); v <= nodes; v++ {
		var o uint32
		if err := binary.Read(body, binary.LittleEndian, &o); err != nil {
			return nil, fmt.Errorf("sketch: read offsets: %w", err)
		}
		if v == 0 && o != 0 {
			return nil, fmt.Errorf("sketch: first offset %d, want 0", o)
		}
		if o < prev {
			return nil, fmt.Errorf("sketch: offsets not monotone at node %d", v)
		}
		if o-prev > k {
			return nil, fmt.Errorf("sketch: node %d holds %d ranks, more than k=%d", v-1, o-prev, k)
		}
		if o > math.MaxInt32 {
			return nil, fmt.Errorf("sketch: offset %d overflows", o)
		}
		prev = o
		off = append(off, int32(o))
	}
	total := off[nodes]
	ranks := make([]uint64, 0, minU32(uint32(total), 1<<16))
	v := uint32(0) // node owning the rank being read, for error messages
	var last uint64
	for i := int32(0); i < total; i++ {
		var rk uint64
		if err := binary.Read(body, binary.LittleEndian, &rk); err != nil {
			return nil, fmt.Errorf("sketch: read ranks: %w", err)
		}
		for off[v+1] <= i {
			v++
		}
		if i > off[v] && rk <= last {
			return nil, fmt.Errorf("sketch: node %d ranks not strictly ascending", v)
		}
		last = rk
		ranks = append(ranks, rk)
	}
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("sketch: read checksum footer: %w", err)
	}
	if sum := h.Sum32(); sum != stored {
		return nil, fmt.Errorf("sketch: checksum mismatch: file carries %08x, payload hashes to %08x (corrupted sketch)", stored, sum)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("sketch: trailing data after checksum footer")
	}
	return &Sketch{
		nodes:  int(nodes),
		worlds: int(worlds),
		live:   int(live),
		k:      int(k),
		seed:   seed,
		fp:     fp,
		off:    off,
		ranks:  ranks,
	}, nil
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// SaveFile writes the sketch to path atomically (temp file + rename +
// directory sync), so an interrupted save never leaves a truncated sketch.
func (s *Sketch) SaveFile(path string) error {
	if err := fault.Hit(fault.SketchSave); err != nil {
		return err
	}
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := s.WriteTo(w)
		return err
	})
}

// LoadFile reads a SOISKC01 sketch from path.
func LoadFile(path string) (*Sketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

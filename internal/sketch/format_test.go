package sketch

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"soi/internal/fault"
	"soi/internal/graph"
)

func testSketch(t testing.TB) *Sketch {
	g := randomGraph(t, 30, 0.12, 8)
	x := buildIndex(t, g, 5, 17)
	s, err := Build(x, Options{K: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFormatRoundTrip(t *testing.T) {
	s := testSketch(t)
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes() != s.Nodes() || got.Worlds() != s.Worlds() || got.LiveWorlds() != s.LiveWorlds() ||
		got.K() != s.K() || got.Seed() != s.Seed() || got.IndexFingerprint() != s.IndexFingerprint() {
		t.Fatalf("header mismatch after round trip: %+v vs %+v", got, s)
	}
	if !reflect.DeepEqual(got.off, s.off) || !reflect.DeepEqual(got.ranks, s.ranks) {
		t.Fatal("payload mismatch after round trip")
	}
	for v := 0; v < s.Nodes(); v++ {
		a, b := s.EstimateSphereSize(graph.NodeID(v)), got.EstimateSphereSize(graph.NodeID(v))
		if a != b {
			t.Fatalf("node %d: estimate changed across serialization: %v != %v", v, a, b)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := testSketch(t)
	path := filepath.Join(t.TempDir(), "test.sketch")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.ranks, s.ranks) || got.IndexFingerprint() != s.IndexFingerprint() {
		t.Fatal("LoadFile does not reproduce the saved sketch")
	}
	if got.Telemetry() != nil {
		t.Fatal("loaded sketch should carry no telemetry until SetTelemetry")
	}
}

func TestSaveFileFaultInjection(t *testing.T) {
	fault.SetActive(true)
	defer fault.SetActive(false)
	if err := fault.Enable(fault.SketchSave, fault.Failpoint{Kind: fault.KindError, Times: 1}); err != nil {
		t.Fatal(err)
	}
	s := testSketch(t)
	path := filepath.Join(t.TempDir(), "test.sketch")
	if err := s.SaveFile(path); err == nil {
		t.Fatal("armed fault did not fire")
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("failed save left a loadable file behind")
	}
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestReadDetectsEveryBitFlip mirrors the index v03 guarantee for SOISKC01:
// a sketch is an estimator, so undetected corruption would silently
// mis-estimate rather than crash. Every single-bit corruption of a valid
// file must therefore be rejected at open — the CRC32-C footer catches the
// flips the structural validators cannot.
func TestReadDetectsEveryBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testSketch(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for pos := range clean {
		for bit := 0; bit < 8; bit++ {
			data := append([]byte(nil), clean...)
			data[pos] ^= 1 << bit
			if _, err := Read(bytes.NewReader(data)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d was accepted", pos, bit)
			}
		}
	}
}

// TestReadRejectsTruncation checks every proper prefix fails cleanly.
func TestReadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testSketch(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for cut := 0; cut < len(clean); cut++ {
		if _, err := Read(bytes.NewReader(clean[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes was accepted", cut, len(clean))
		}
	}
}

func TestReadRejectsTrailingData(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testSketch(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), 0)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("trailing byte after the checksum footer was accepted")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("SOIIDX03xxxxxxxx"))); err == nil {
		t.Fatal("foreign magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

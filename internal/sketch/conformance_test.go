package sketch

import (
	"fmt"
	"testing"

	"soi/internal/graph"
	"soi/internal/oracle"
	"soi/internal/statcheck"
)

// conformanceGraph is a small multi-community graph whose possible worlds
// the exact oracle can enumerate (12 uncertain edges -> 4096 worlds).
func conformanceGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(8)
	for _, e := range []struct {
		from, to graph.NodeID
		p        float64
	}{
		{0, 1, 0.6}, {0, 2, 0.5}, {0, 3, 0.4},
		{4, 2, 0.5}, {4, 3, 0.6}, {4, 5, 0.3},
		{1, 2, 0.3}, {3, 5, 0.2},
		{5, 6, 0.7}, {6, 7, 0.7}, {2, 7, 0.2}, {7, 1, 0.3},
	} {
		b.AddEdge(e.from, e.to, e.p)
	}
	return b.MustBuild()
}

// Conformance parameters. The sketch genuinely compresses here: each node's
// reachability multiset holds up to n*ell = 160000 (node, world) pairs,
// far above k — so these tests exercise the (k-1)/rho_k estimator, not the
// exact small-sketch path.
const (
	confEll  = 20000
	confK    = 1 << 16
	confSeed = 11
)

// confBound derives the tolerance for one sketch estimate of a quantity
// with exact value `exact`, asserted together with m-1 sibling assertions:
// the Cohen bottom-k relative bound (delta split across the m assertions,
// scaled to additive by the exact value) plus the Hoeffding world-sampling
// bound on a [0, n]-valued mean over ell worlds.
func confBound(exact float64, m, n int) statcheck.Bound {
	sk := statcheck.BottomKDelta(confK, statcheck.DefaultDelta/float64(m)).Scale(exact)
	world := statcheck.Hoeffding(confEll).Union(m).Scale(float64(n))
	return sk.Plus(world)
}

// TestConformanceSketchSpread holds sketch seed-set spread estimates to the
// exact possible-world oracle within the derived (bottom-k + world
// sampling) tolerance. Fixed seeds make the run deterministic; failure
// probability is bounded by the composed delta, not flakiness.
func TestConformanceSketchSpread(t *testing.T) {
	g := conformanceGraph(t)
	o, err := oracle.NewSpreadOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	x := buildIndex(t, g, confEll, confSeed)
	s := mustBuild(t, x, Options{K: confK, Seed: 7})

	seedSets := [][]graph.NodeID{
		{0}, {4}, {5}, {7},
		{0, 4}, {0, 5}, {2, 6}, {1, 3},
		{0, 4, 6}, {1, 5, 7}, {0, 1, 2, 3},
	}
	for _, seeds := range seedSets {
		exact, err := o.Spread(seeds)
		if err != nil {
			t.Fatal(err)
		}
		got := s.EstimateSpread(seeds)
		statcheck.Close(t, fmt.Sprintf("sketch spread %v", seeds), got, exact,
			confBound(exact, len(seedSets), g.NumNodes()))
	}
}

// TestConformanceSketchSphereSize holds every node's estimated expected
// sphere magnitude E[|R(v)|] to the oracle's exact singleton spread.
func TestConformanceSketchSphereSize(t *testing.T) {
	g := conformanceGraph(t)
	o, err := oracle.NewSpreadOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	x := buildIndex(t, g, confEll, confSeed)
	s := mustBuild(t, x, Options{K: confK, Seed: 9})

	n := g.NumNodes()
	for v := 0; v < n; v++ {
		exact, err := o.Spread([]graph.NodeID{graph.NodeID(v)})
		if err != nil {
			t.Fatal(err)
		}
		got := s.EstimateSphereSize(graph.NodeID(v))
		statcheck.Close(t, fmt.Sprintf("sketch sphere size node %d", v), got, exact,
			confBound(exact, n, n))
	}
}

// TestConformanceSketchServingBound checks the serving-time error bound
// (ErrorBound, what /v1 responses report at delta=0.05) actually brackets
// the exact value for every node — the acceptance contract of the smoke
// test, held here against the oracle with the world-sampling slack added.
func TestConformanceSketchServingBound(t *testing.T) {
	g := conformanceGraph(t)
	o, err := oracle.NewSpreadOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	x := buildIndex(t, g, confEll, confSeed)
	s := mustBuild(t, x, Options{K: confK, Seed: 7})

	n := g.NumNodes()
	world := statcheck.Hoeffding(confEll).Union(n).Scale(float64(n))
	for v := 0; v < n; v++ {
		exact, err := o.Spread([]graph.NodeID{graph.NodeID(v)})
		if err != nil {
			t.Fatal(err)
		}
		got := s.EstimateSphereSize(graph.NodeID(v))
		bound := s.ErrorBound(got)
		if diff := got - exact; diff > bound+world.Eps || diff < -bound-world.Eps {
			t.Errorf("node %d: |%.4f - %.4f| exceeds served bound %.4f + world slack %.4f",
				v, got, exact, bound, world.Eps)
		}
	}
}

// Package sketch implements combined bottom-k reachability sketches over
// the sampled possible worlds of a cascade index (Cohen 1997; Cohen,
// Delling, Pajor, Werneck, CIKM 2014). Every (node u, world i) pair gets a
// random rank; node v's combined sketch is the k smallest ranks among all
// pairs {(u, i) : u reachable from v in world i}. From it,
//
//	Σ_i |R_i(v)| ≈ (k-1)/ρ_k   (exact when the sketch holds < k ranks),
//
// where ρ_k is the k-th smallest rank mapped to [0,1), so expected spread
// and sphere magnitude are the estimate divided by the number of live
// worlds. Seed-set spread comes from merging seed sketches (the bottom-k of
// a union is the bottom-k of the union of bottom-k's), which powers the
// SKIM-style sketch-space greedy in internal/infmax.
//
// Construction is one reverse-reachability rank pass per world over the
// index's condensation DAGs — O(Σ_i (|V_i^c| + |E_i^c|) · k) — instead of
// the worlds × nodes dense extraction, which is the asymptotic win: build
// cost and sketch size are near-linear in the index, not quadratic in the
// graph.
//
// Estimates carry Cohen-style (ε, δ) relative-error bounds: the k-th order
// statistic of uniform ranks concentrates, giving |est − exact| ≤ ε·exact
// with probability 1−δ for ε = sqrt(6·ln(2/δ)/(k−1)) (see
// statcheck.BottomK for the derivation used by the conformance suite).
package sketch

import (
	"context"
	"fmt"
	"math"
	"slices"

	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/pool"
	"soi/internal/rng"
	"soi/internal/telemetry"
)

// DefaultK is the sketch size used when Options.K is zero: large enough
// that the relative error sqrt(6·ln(2/δ)/(k−1)) at δ=0.05 is ≈ 0.59, small
// enough that sketches stay tiny next to the index.
const DefaultK = 64

// ServingDelta is the confidence level of the error bounds reported with
// sketch estimates in query responses, matching the 95% convention of the
// budget-truncation bounds (checkpoint.ErrorBound).
const ServingDelta = 0.05

// Options configures Build.
type Options struct {
	// K is the sketch size (bottom-k); 0 selects DefaultK. Must be >= 2:
	// the estimator (k-1)/ρ_k needs a spare order statistic.
	K int
	// Seed drives the rank hashes. Two sketches of the same index with the
	// same K and Seed are identical.
	Seed uint64
	// Workers bounds build parallelism; zero and negative values both mean
	// GOMAXPROCS (the library-wide convention).
	Workers int
	// Progress, if non-nil, is called after each world's rank pass with
	// (done, total). Calls are serialized.
	Progress func(done, total int)
	// Telemetry, if non-nil, receives a "sketch.build" span and build
	// counters, and is retained on the Sketch so sketch-space greedy
	// selection meters against it.
	Telemetry *telemetry.Registry
}

// Sketch holds the combined bottom-k reachability sketches of every node of
// one index. It is immutable after Build/Read and safe for concurrent use.
type Sketch struct {
	nodes  int
	worlds int // worlds of the source index, including quarantined ones
	live   int // worlds that contributed ranks
	k      int
	seed   uint64
	fp     uint64 // Fingerprint of the source index

	// CSR: node v's ascending rank list is ranks[off[v]:off[v+1]],
	// strictly ascending, at most k long.
	off   []int32
	ranks []uint64

	tel *telemetry.Registry
}

// Build constructs combined sketches over every live world of x. The result
// is deterministic given (index contents, K, Seed), independent of Workers.
func Build(x *index.Index, opts Options) (*Sketch, error) {
	k := opts.K
	if k == 0 {
		k = DefaultK
	}
	if k < 2 {
		return nil, fmt.Errorf("sketch: k must be >= 2, got %d", k)
	}
	n := x.Graph().NumNodes()
	worlds := x.NumWorlds()
	tel := opts.Telemetry
	sp := tel.StartSpan("sketch.build")
	defer sp.End()

	// Per-node bottom-k accumulators: heap[v*k : v*k+cnt[v]] is a max-heap
	// of the k smallest ranks seen for v so far.
	heaps := make([]uint64, n*k)
	cnt := make([]int32, n)

	type pass struct {
		scratch index.RankScratch
		comp    []int32
		ok      bool
	}
	workers := pool.Workers(opts.Workers, worlds)
	batch := workers
	passes := make([]pass, batch)
	live := 0
	done := 0
	progress := func() {
		done++
		if opts.Progress != nil {
			opts.Progress(done, worlds)
		}
	}
	for base := 0; base < worlds; base += batch {
		m := batch
		if base+m > worlds {
			m = worlds - base
		}
		// Phase 1: independent per-world rank passes, in parallel.
		err := pool.Run(context.Background(), m, pool.Options{Workers: workers, Telemetry: tel},
			func(_, j int) error {
				i := base + j
				wseed := rng.Mix64(opts.Seed ^ uint64(i)<<20)
				comp, ok := x.WorldReachRanks(i, k, func(v int32) uint64 {
					return rng.Mix64(wseed ^ uint64(v)*0x9E3779B97F4A7C15)
				}, &passes[j].scratch)
				passes[j].comp, passes[j].ok = comp, ok
				return nil
			})
		if err != nil {
			return nil, err
		}
		// Phase 2: merge the batch into the per-node accumulators, each
		// worker owning a disjoint node range (no locks, and each node sees
		// the worlds in a fixed order, so the result is worker-independent).
		err = pool.Run(context.Background(), workers, pool.Options{Workers: workers},
			func(_, r int) error {
				lo, hi := n*r/workers, n*(r+1)/workers
				for j := 0; j < m; j++ {
					p := &passes[j]
					if !p.ok {
						continue
					}
					for v := lo; v < hi; v++ {
						mergeHeap(heaps[v*k:v*k+k], &cnt[v], p.scratch.List(p.comp[v]))
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		for j := 0; j < m; j++ {
			if passes[j].ok {
				live++
			}
			// Keep the scratch arenas: slot j serves one world per batch, so
			// after the first batch every pass is allocation-free.
			passes[j].comp, passes[j].ok = nil, false
			progress()
		}
	}

	// Freeze: sort each accumulator ascending and pack into CSR.
	total := 0
	for v := 0; v < n; v++ {
		total += int(cnt[v])
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("sketch: %d ranks overflow the SOISKC01 offset space; lower k", total)
	}
	s := &Sketch{
		nodes:  n,
		worlds: worlds,
		live:   live,
		k:      k,
		seed:   opts.Seed,
		fp:     x.Fingerprint(),
		off:    make([]int32, n+1),
		ranks:  make([]uint64, total),
		tel:    tel,
	}
	for v := 0; v < n; v++ {
		s.off[v+1] = s.off[v] + cnt[v]
	}
	err := pool.Run(context.Background(), workers, pool.Options{Workers: workers},
		func(_, r int) error {
			for v := n * r / workers; v < n*(r+1)/workers; v++ {
				row := s.ranks[s.off[v]:s.off[v+1]]
				copy(row, heaps[v*k:v*k+int(cnt[v])])
				slices.Sort(row)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	sp.AddUnits(int64(worlds))
	tel.Counter("sketch.build.worlds").Add(int64(worlds))
	tel.Counter("sketch.build.ranks").Add(int64(total))
	return s, nil
}

// mergeHeap folds an ascending rank list into a node's bottom-k max-heap.
// Ranks from different worlds are hashes of distinct (node, world) pairs,
// so ties are kept (they are distinct elements of the multiset).
func mergeHeap(h []uint64, cnt *int32, s []uint64) {
	k := int32(len(h))
	for _, r := range s {
		if *cnt < k {
			h[*cnt] = r
			siftUp(h, int(*cnt))
			*cnt++
			continue
		}
		if r >= h[0] {
			return // s ascends: nothing later can displace the max either
		}
		h[0] = r
		siftDown(h[:k], 0)
	}
}

func siftUp(h []uint64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []uint64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && h[l] > h[big] {
			big = l
		}
		if r < len(h) && h[r] > h[big] {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// Nodes returns the node count of the sketched graph.
func (s *Sketch) Nodes() int { return s.nodes }

// Worlds returns the world count of the source index, quarantined included.
func (s *Sketch) Worlds() int { return s.worlds }

// LiveWorlds returns how many worlds contributed ranks — the denominator of
// every spread estimate.
func (s *Sketch) LiveWorlds() int { return s.live }

// K returns the sketch size.
func (s *Sketch) K() int { return s.k }

// Seed returns the rank-hash seed the sketch was built with.
func (s *Sketch) Seed() uint64 { return s.seed }

// IndexFingerprint returns the Fingerprint of the index the sketch was
// built from; loaders refuse to serve a sketch against any other index.
func (s *Sketch) IndexFingerprint() uint64 { return s.fp }

// SetTelemetry attaches a registry (typically to a sketch loaded from disk,
// which has none) so selection over it can be metered.
func (s *Sketch) SetTelemetry(reg *telemetry.Registry) { s.tel = reg }

// Telemetry returns the attached registry (possibly nil).
func (s *Sketch) Telemetry() *telemetry.Registry { return s.tel }

// NodeRanks returns node v's ascending bottom-k rank list. The slice
// aliases the sketch's backing array: callers must not modify it.
func (s *Sketch) NodeRanks(v graph.NodeID) []uint64 {
	return s.ranks[s.off[v]:s.off[v+1]]
}

// MemoryFootprint returns the approximate resident size in bytes.
func (s *Sketch) MemoryFootprint() int64 {
	return int64(len(s.off))*4 + int64(len(s.ranks))*8
}

// Merge returns the ascending bottom-k union of two ascending rank lists.
// Equal ranks collapse to one: a rank is a hash of its (node, world) pair,
// so equality means the same pair arrived through both arguments. Merge is
// commutative, associative, and idempotent — the algebra the combined
// sketch and the sketch-space greedy rely on.
func Merge(k int, a, b []uint64) []uint64 {
	out := make([]uint64, 0, min(k, len(a)+len(b)))
	i, j := 0, 0
	for len(out) < k && (i < len(a) || j < len(b)) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal: one element
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// rankScale maps a uint64 rank to (0,1]: ρ = (rank+1)/2^64, so the
// smallest possible rank is still a positive fraction.
const rankScale = 1.0 / (1 << 32) / (1 << 32)

// EstimateFromRanks is the bottom-k cardinality estimator applied to an
// ascending rank list: exact when the list holds fewer than k ranks (it is
// then the whole reachability multiset), (k−1)/ρ_k otherwise.
func (s *Sketch) EstimateFromRanks(ranks []uint64) float64 {
	if len(ranks) < s.k {
		return float64(len(ranks))
	}
	rho := (float64(ranks[s.k-1]) + 1) * rankScale
	return float64(s.k-1) / rho
}

// SpreadFromRanks converts a merged rank list to expected-spread units:
// the estimated Σ_i |R_i(S)| divided by the live world count.
func (s *Sketch) SpreadFromRanks(ranks []uint64) float64 {
	if s.live == 0 {
		return 0
	}
	return s.EstimateFromRanks(ranks) / float64(s.live)
}

// EstimateSpread estimates the expected spread of a seed set over the
// index's live worlds by merging the seeds' sketches.
func (s *Sketch) EstimateSpread(seeds []graph.NodeID) float64 {
	return s.SpreadFromRanks(s.MergedRanks(seeds))
}

// MergedRanks returns the ascending bottom-k union of the seeds' sketches.
func (s *Sketch) MergedRanks(seeds []graph.NodeID) []uint64 {
	if len(seeds) == 0 {
		return nil
	}
	merged := s.NodeRanks(seeds[0])
	for _, v := range seeds[1:] {
		merged = Merge(s.k, merged, s.NodeRanks(v))
	}
	return merged
}

// EstimateSphereSize estimates the expected sphere magnitude of v — the
// expected cascade size E_i[|R_i(v)|] over the index's live worlds. (The
// typical-cascade sphere of internal/core is a median-like set; its
// expected size is what a cardinality sketch can see.)
func (s *Sketch) EstimateSphereSize(v graph.NodeID) float64 {
	return s.SpreadFromRanks(s.NodeRanks(v))
}

// RelativeError is the Cohen bottom-k relative error at confidence 1−δ:
// ε = sqrt(6·ln(2/δ)/(k−1)), capped at 1. With probability at least 1−δ,
// |estimate − exact| ≤ ε · exact (see statcheck.BottomK for the
// concentration argument).
func RelativeError(k int, delta float64) float64 {
	if k < 2 {
		return 1
	}
	return math.Min(1, math.Sqrt(6*math.Log(2/delta)/float64(k-1)))
}

// ErrorBound returns the additive error bound reported alongside a sketch
// estimate in query responses: the relative error at ServingDelta scaled by
// the estimate itself.
func (s *Sketch) ErrorBound(estimate float64) float64 {
	return RelativeError(s.k, ServingDelta) * estimate
}

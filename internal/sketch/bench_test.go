package sketch

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/rng"
)

// Benchmark scale: a 100k-node graph with ~2M edges in the near-critical
// activation regime (mean active out-degree 0.9, mean cascade ~10 nodes).
// The dense baseline is the worlds x nodes reachability matrix the sketch
// replaces: per (node, world) traversals and 4 bytes per cell, versus one
// rank pass per world and k ranks per node.
const (
	benchNodes  = 100_000
	benchDeg    = 20
	benchProb   = 0.048
	benchWorlds = 192
	benchK      = 8
)

var (
	benchOnce sync.Once
	benchG    *graph.Graph
	benchX    *index.Index
	benchSk   *Sketch
)

func benchFixture(b *testing.B) (*graph.Graph, *index.Index, *Sketch) {
	b.Helper()
	benchOnce.Do(func() {
		r := rand.New(rand.NewSource(77))
		bl := graph.NewBuilder(benchNodes)
		for u := 0; u < benchNodes; u++ {
			for d := 0; d < benchDeg; d++ {
				v := graph.NodeID(r.Intn(benchNodes))
				if v != graph.NodeID(u) {
					bl.AddEdge(graph.NodeID(u), v, benchProb)
				}
			}
		}
		g, err := bl.Build()
		if err != nil {
			panic(err)
		}
		x, err := index.Build(g, index.Options{Samples: benchWorlds, Seed: 78})
		if err != nil {
			panic(err)
		}
		sk, err := Build(x, Options{K: benchK, Seed: 79})
		if err != nil {
			panic(err)
		}
		benchG, benchX, benchSk = g, x, sk
	})
	return benchG, benchX, benchSk
}

// artifactBytes measures the serialized SOISKC01 size without touching disk.
func artifactBytes(b *testing.B, s *Sketch) int64 {
	b.Helper()
	n, err := s.WriteTo(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkSketchBuild: one reverse-reachability rank pass per world over
// the condensation DAGs, merged into per-node bottom-k sets. artifact-bytes
// is the on-disk SOISKC01 size.
func BenchmarkSketchBuild(b *testing.B) {
	_, x, _ := benchFixture(b)
	var last *Sketch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Build(x, Options{K: benchK, Seed: 79})
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	b.StopTimer()
	b.ReportMetric(float64(artifactBytes(b, last)), "artifact-bytes")
	b.ReportMetric(float64(benchWorlds), "worlds")
}

// BenchmarkDenseMatrixBuild is the baseline the sketch replaces: the dense
// worlds x nodes cascade-size matrix, extracted by a traversal per
// (node, world) over the sampled graph. Its artifact is 4 bytes per cell —
// and it still only answers singleton queries; seed-set spreads would need
// the full member-list matrix, which is larger again by the mean cascade
// size. Build cost scales with worlds x nodes x cascade size; the sketch
// pass is bounded by k per node regardless of how far cascades reach.
func BenchmarkDenseMatrixBuild(b *testing.B) {
	g, _, _ := benchFixture(b)
	n := g.NumNodes()
	nEdges := g.NumEdges()
	active := make([]bool, nEdges)
	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	row := make([]uint32, n) // one matrix column, reused per world
	epoch := int32(-1)
	thr := uint64(benchProb * float64(1<<63) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < benchWorlds; w++ {
			wseed := rng.Mix64(uint64(80) ^ uint64(w)<<20)
			for e := 0; e < nEdges; e++ {
				active[e] = rng.Mix64(wseed^uint64(e)*0x9E3779B97F4A7C15) < thr
			}
			for v := 0; v < n; v++ {
				epoch++
				queue = append(queue[:0], graph.NodeID(v))
				visited[v] = epoch
				count := uint32(0)
				for len(queue) > 0 {
					u := queue[len(queue)-1]
					queue = queue[:len(queue)-1]
					count++
					lo, hi := g.EdgeRange(u)
					for e := lo; e < hi; e++ {
						if t := g.EdgeTo(e); active[e] && visited[t] != epoch {
							visited[t] = epoch
							queue = append(queue, t)
						}
					}
				}
				row[v] = count
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(4*n*benchWorlds), "artifact-bytes")
	b.ReportMetric(float64(benchWorlds), "worlds")
}

// BenchmarkSketchEstimateSpread: a seed-set spread estimate is one O(k)
// merge per seed — independent of worlds and cascade size.
func BenchmarkSketchEstimateSpread(b *testing.B) {
	_, _, sk := benchFixture(b)
	seeds := benchSeeds()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = sk.EstimateSpread(seeds)
	}
	b.StopTimer()
	b.ReportMetric(sink, "spread")
}

// BenchmarkDenseEstimateSpread is the served dense estimator: a cascade
// union per world, every world.
func BenchmarkDenseEstimateSpread(b *testing.B) {
	_, x, _ := benchFixture(b)
	seeds := benchSeeds()
	s := x.NewScratch()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		total := 0
		for w := 0; w < benchWorlds; w++ {
			total += x.CascadeSizeFromSet(seeds, w, s)
		}
		sink = float64(total) / benchWorlds
	}
	b.StopTimer()
	b.ReportMetric(sink, "spread")
}

func benchSeeds() []graph.NodeID {
	seeds := make([]graph.NodeID, 10)
	for i := range seeds {
		seeds[i] = graph.NodeID(i * 9973)
	}
	return seeds
}

// Package gen provides synthetic social-graph generators.
//
// The paper evaluates on six real-world benchmark networks. Those datasets
// are not redistributable here, so each is replaced by a synthetic analog
// whose degree distribution and directedness match the property the paper's
// algorithms are sensitive to (see DESIGN.md §3). The generators are
// deterministic given a seed.
//
// All generators return topology only, with every edge probability set to a
// placeholder of 1.0; callers apply one of the probability-assignment
// methods from internal/probs afterwards.
package gen

import (
	"fmt"
	"math"

	"soi/internal/graph"
	"soi/internal/rng"
)

const placeholderProb = 1.0

// Config selects a generator and its parameters.
type Config struct {
	// Model is one of "ba", "er", "ws", "copying", "sbm".
	Model string
	// N is the number of nodes.
	N int
	// M is the model-specific density parameter: edges added per node for
	// "ba" and "copying", total edge count for "er", ring degree for "ws".
	M int
	// Mutual makes every generated link bidirectional, modelling the
	// undirected benchmark graphs.
	Mutual bool
	// Beta is the rewiring probability for "ws" and the copy probability
	// for "copying"; ignored by other models.
	Beta float64
	// TailExp, when positive, draws each "ba" node's out-link count from a
	// truncated power law with this tail exponent (typical social networks:
	// 2.1-3.0) and mean M, instead of the constant M. Real benchmark graphs
	// have median degree far below the mean; the contagion regime (who takes
	// off, how big the percolating core is) depends on that skew.
	TailExp float64
	// Clustering is the triad-formation probability for "ba" (Holme & Kim
	// 2002): after each preferential attachment to a target, with this
	// probability the next link goes to a random neighbor of that target,
	// closing a triangle. Real social networks are strongly clustered; the
	// dense core this creates is what makes supercritical cascade
	// realizations stable (the same core is re-infected world after world).
	Clustering float64
	// Recip is the probability that a directed "ba" or "copying" link is
	// reciprocated (the reverse edge added too). Real social networks have
	// substantial reciprocity, which correlates in- and out-degree: the
	// hubs cascades reach are also the nodes that spread furthest. This
	// correlation is what makes fixed-probability contagion supercritical
	// on the benchmark graphs. Ignored when Mutual is set.
	Recip float64
	// Blocks is the number of equal-size communities for "sbm"; Beta is
	// then the fraction of links that cross communities.
	Blocks int
	// Seed drives the deterministic RNG.
	Seed uint64
}

// Generate builds a graph according to cfg.
func Generate(cfg Config) (*graph.Graph, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("gen: need at least 2 nodes, got %d", cfg.N)
	}
	r := rng.New(cfg.Seed)
	switch cfg.Model {
	case "ba":
		return barabasiAlbert(cfg, r)
	case "er":
		return erdosRenyi(cfg, r)
	case "ws":
		return wattsStrogatz(cfg, r)
	case "copying":
		return copying(cfg, r)
	case "sbm":
		return blockModel(cfg, r)
	default:
		return nil, fmt.Errorf("gen: unknown model %q", cfg.Model)
	}
}

// MustGenerate is Generate for known-good configurations; it panics on error.
func MustGenerate(cfg Config) *graph.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

func addLink(b *graph.Builder, cfg Config, r *rng.PCG32, u, v graph.NodeID) {
	if cfg.Mutual {
		b.AddMutualEdge(u, v, placeholderProb)
		return
	}
	b.AddEdge(u, v, placeholderProb)
	if cfg.Recip > 0 && r.Float64() < cfg.Recip {
		b.AddEdge(v, u, placeholderProb)
	}
}

// barabasiAlbert grows a preferential-attachment graph: each new node u
// attaches M out-links to existing nodes chosen proportionally to their
// current degree (in the repeated-endpoints list formulation). The result
// has a power-law in-degree tail like the paper's social networks.
func barabasiAlbert(cfg Config, r *rng.PCG32) (*graph.Graph, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("gen: ba requires M >= 1, got %d", cfg.M)
	}
	b := graph.NewBuilder(cfg.N)
	// endpoints holds one entry per edge endpoint; sampling uniformly from
	// it is sampling nodes proportional to degree.
	endpoints := make([]graph.NodeID, 0, 2*cfg.N*cfg.M)
	// Seed clique among the first M+1 nodes so attachment has targets.
	core := cfg.M + 1
	if core > cfg.N {
		core = cfg.N
	}
	for u := 0; u < core; u++ {
		for v := 0; v < u; v++ {
			addLink(b, cfg, r, graph.NodeID(u), graph.NodeID(v))
			endpoints = append(endpoints, graph.NodeID(u), graph.NodeID(v))
		}
	}
	sampleDegree := degreeSampler(cfg)
	// outs tracks each node's chosen targets so triad formation can close
	// triangles through them.
	outs := make([][]graph.NodeID, cfg.N)
	for u := core; u < cfg.N; u++ {
		mu := sampleDegree(r)
		if mu >= u {
			mu = u // cannot exceed the number of available targets
		}
		chosen := make(map[graph.NodeID]bool, mu)
		order := make([]graph.NodeID, 0, mu)
		var last graph.NodeID = -1
		for len(order) < mu {
			var v graph.NodeID
			switch {
			case last >= 0 && cfg.Clustering > 0 && len(outs[last]) > 0 &&
				r.Float64() < cfg.Clustering:
				// Triad formation: link a neighbor of the previous target.
				v = outs[last][r.Intn(len(outs[last]))]
			case r.Intn(4) == 0:
				// Mix uniform choice in with probability 1/4 to keep the
				// tail from collapsing onto a handful of hubs.
				v = graph.NodeID(r.Intn(u))
			default:
				v = endpoints[r.Intn(len(endpoints))]
			}
			if v == graph.NodeID(u) || chosen[v] {
				last = -1 // failed triad: fall back to attachment next try
				continue
			}
			chosen[v] = true
			order = append(order, v)
			last = v
		}
		for _, v := range order {
			addLink(b, cfg, r, graph.NodeID(u), v)
			outs[u] = append(outs[u], v)
			endpoints = append(endpoints, graph.NodeID(u), v)
		}
	}
	return b.Build()
}

// degreeSampler returns a function drawing a node's out-link count. With
// TailExp <= 0 it is the constant M. Otherwise counts follow a truncated
// discrete power law P(k) ∝ k^(-TailExp) on [1, 40·M], rescaled so that the
// realized mean is M: most nodes get the minimum, a heavy tail of hubs gets
// the rest — the skew of real social-network degree sequences.
func degreeSampler(cfg Config) func(r *rng.PCG32) int {
	if cfg.TailExp <= 0 {
		return func(*rng.PCG32) int { return cfg.M }
	}
	maxK := 40 * cfg.M
	weights := make([]float64, maxK+1)
	var totalW, meanRaw float64
	for k := 1; k <= maxK; k++ {
		w := powNeg(float64(k), cfg.TailExp)
		weights[k] = w
		totalW += w
		meanRaw += w * float64(k)
	}
	meanRaw /= totalW
	// Scale the support so the mean lands on M, then build the cumulative
	// table for inverse-CDF sampling.
	scale := float64(cfg.M) / meanRaw
	cum := make([]float64, maxK+1)
	acc := 0.0
	for k := 1; k <= maxK; k++ {
		acc += weights[k] / totalW
		cum[k] = acc
	}
	return func(r *rng.PCG32) int {
		u := r.Float64()
		lo, hi := 1, maxK
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		k := int(float64(lo)*scale + 0.5)
		if k < 1 {
			k = 1
		}
		return k
	}
}

func powNeg(x, exp float64) float64 {
	// x^(-exp) via repeated multiplication is wrong for fractional
	// exponents; use the math package.
	return mathPow(x, -exp)
}

// erdosRenyi generates G(n, m): M distinct directed edges chosen uniformly.
func erdosRenyi(cfg Config, r *rng.PCG32) (*graph.Graph, error) {
	maxEdges := cfg.N * (cfg.N - 1)
	if cfg.Mutual {
		maxEdges /= 2
	}
	if cfg.M < 1 || cfg.M > maxEdges {
		return nil, fmt.Errorf("gen: er requires 1 <= M <= %d, got %d", maxEdges, cfg.M)
	}
	b := graph.NewBuilder(cfg.N)
	seen := make(map[[2]graph.NodeID]bool, cfg.M)
	for len(seen) < cfg.M {
		u := graph.NodeID(r.Intn(cfg.N))
		v := graph.NodeID(r.Intn(cfg.N))
		if u == v {
			continue
		}
		if cfg.Mutual && u > v {
			u, v = v, u
		}
		key := [2]graph.NodeID{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		addLink(b, cfg, r, u, v)
	}
	return b.Build()
}

// wattsStrogatz builds a ring lattice where each node links to its M nearest
// clockwise neighbors, then rewires each link's target with probability Beta.
// It models the paper's sparse, low-variance-degree citation network.
func wattsStrogatz(cfg Config, r *rng.PCG32) (*graph.Graph, error) {
	if cfg.M < 1 || cfg.M >= cfg.N {
		return nil, fmt.Errorf("gen: ws requires 1 <= M < N, got M=%d N=%d", cfg.M, cfg.N)
	}
	b := graph.NewBuilder(cfg.N)
	type link struct{ u, v graph.NodeID }
	seen := make(map[link]bool, cfg.N*cfg.M)
	add := func(u, v graph.NodeID) bool {
		if u == v {
			return false
		}
		a, bb := u, v
		if cfg.Mutual && a > bb {
			a, bb = bb, a
		}
		if seen[link{a, bb}] {
			return false
		}
		seen[link{a, bb}] = true
		addLink(b, cfg, r, u, v)
		return true
	}
	for u := 0; u < cfg.N; u++ {
		for j := 1; j <= cfg.M; j++ {
			v := graph.NodeID((u + j) % cfg.N)
			if r.Float64() < cfg.Beta {
				// Rewire: pick a random target, retrying collisions a few
				// times before falling back to the lattice edge.
				placed := false
				for try := 0; try < 8; try++ {
					w := graph.NodeID(r.Intn(cfg.N))
					if add(graph.NodeID(u), w) {
						placed = true
						break
					}
				}
				if placed {
					continue
				}
			}
			add(graph.NodeID(u), v)
		}
	}
	return b.Build()
}

// copying implements a copying/forest-fire-style model: each new node picks
// a random prototype and copies each of the prototype's out-links with
// probability Beta, otherwise linking to a uniform node; it always adds at
// least one link to the prototype itself. Produces heavy-tailed, locally
// clustered graphs.
func copying(cfg Config, r *rng.PCG32) (*graph.Graph, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("gen: copying requires M >= 1, got %d", cfg.M)
	}
	b := graph.NewBuilder(cfg.N)
	outs := make([][]graph.NodeID, cfg.N)
	addLocal := func(u, v graph.NodeID) {
		for _, w := range outs[u] {
			if w == v {
				return
			}
		}
		outs[u] = append(outs[u], v)
		addLink(b, cfg, r, u, v)
	}
	addLocal(1, 0)
	for u := 2; u < cfg.N; u++ {
		proto := graph.NodeID(r.Intn(u))
		addLocal(graph.NodeID(u), proto)
		budget := cfg.M - 1
		for _, w := range outs[proto] {
			if budget == 0 {
				break
			}
			if w == graph.NodeID(u) {
				continue
			}
			if r.Float64() < cfg.Beta {
				addLocal(graph.NodeID(u), w)
			} else {
				x := graph.NodeID(r.Intn(u))
				if x != graph.NodeID(u) {
					addLocal(graph.NodeID(u), x)
				}
			}
			budget--
		}
		for budget > 0 {
			x := graph.NodeID(r.Intn(u))
			if x != graph.NodeID(u) {
				addLocal(graph.NodeID(u), x)
			}
			budget--
		}
	}
	return b.Build()
}

// mathPow is a thin alias keeping the math import localized.
func mathPow(x, y float64) float64 { return math.Pow(x, y) }

// blockModel generates a stochastic block model: N nodes split into Blocks
// equal communities; each node draws M out-links, each targeting its own
// community with probability 1-Beta and a uniformly random other community
// otherwise. Community structure stresses coverage-based seed selection
// (one seed per community beats many seeds in one), which is why the model
// is included alongside the social-network generators.
func blockModel(cfg Config, r *rng.PCG32) (*graph.Graph, error) {
	if cfg.Blocks < 2 {
		return nil, fmt.Errorf("gen: sbm requires Blocks >= 2, got %d", cfg.Blocks)
	}
	if cfg.N < 2*cfg.Blocks {
		return nil, fmt.Errorf("gen: sbm requires N >= 2*Blocks, got N=%d Blocks=%d", cfg.N, cfg.Blocks)
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("gen: sbm requires M >= 1, got %d", cfg.M)
	}
	if cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("gen: sbm requires Beta in [0,1], got %v", cfg.Beta)
	}
	b := graph.NewBuilder(cfg.N)
	size := cfg.N / cfg.Blocks
	community := func(v int) int {
		c := v / size
		if c >= cfg.Blocks {
			c = cfg.Blocks - 1 // remainder nodes join the last community
		}
		return c
	}
	memberRange := func(c int) (lo, hi int) {
		lo = c * size
		hi = lo + size
		if c == cfg.Blocks-1 {
			hi = cfg.N
		}
		return lo, hi
	}
	type link struct{ u, v graph.NodeID }
	seen := make(map[link]bool, cfg.N*cfg.M)
	for u := 0; u < cfg.N; u++ {
		cu := community(u)
		for placed := 0; placed < cfg.M; {
			c := cu
			if r.Float64() < cfg.Beta {
				c = r.Intn(cfg.Blocks - 1)
				if c >= cu {
					c++
				}
			}
			lo, hi := memberRange(c)
			v := lo + r.Intn(hi-lo)
			if v == u {
				continue
			}
			a, bb := graph.NodeID(u), graph.NodeID(v)
			if cfg.Mutual && a > bb {
				a, bb = bb, a
			}
			if seen[link{a, bb}] {
				placed++ // avoid livelock in tiny dense communities
				continue
			}
			seen[link{a, bb}] = true
			addLink(b, cfg, r, graph.NodeID(u), graph.NodeID(v))
			placed++
		}
	}
	return b.Build()
}

package gen

import (
	"sort"
	"testing"

	"soi/internal/graph"
	"soi/internal/rng"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, model := range []string{"ba", "er", "ws", "copying"} {
		cfg := Config{Model: model, N: 200, M: 3, Beta: 0.3, Seed: 17}
		if model == "er" {
			cfg.M = 600
		}
		g1 := MustGenerate(cfg)
		g2 := MustGenerate(cfg)
		e1, e2 := g1.Edges(), g2.Edges()
		if len(e1) != len(e2) {
			t.Fatalf("%s: nondeterministic edge count %d vs %d", model, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", model, i, e1[i], e2[i])
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(Config{Model: "ba", N: 200, M: 3, Seed: 1})
	b := MustGenerate(Config{Model: "ba", N: 200, M: 3, Seed: 2})
	ea, eb := a.Edges(), b.Edges()
	if len(ea) == len(eb) {
		same := true
		for i := range ea {
			if ea[i] != eb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	for _, model := range []string{"ba", "er", "ws", "copying"} {
		for _, mutual := range []bool{false, true} {
			cfg := Config{Model: model, N: 150, M: 4, Beta: 0.2, Mutual: mutual, Seed: 3}
			if model == "er" {
				cfg.M = 400
			}
			g, err := Generate(cfg)
			if err != nil {
				t.Fatalf("%s mutual=%v: %v", model, mutual, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s mutual=%v: %v", model, mutual, err)
			}
			if g.NumNodes() != cfg.N {
				t.Fatalf("%s: NumNodes = %d, want %d", model, g.NumNodes(), cfg.N)
			}
			if g.NumEdges() == 0 {
				t.Fatalf("%s: no edges", model)
			}
		}
	}
}

func TestMutualSymmetric(t *testing.T) {
	for _, model := range []string{"ba", "er", "ws", "copying"} {
		cfg := Config{Model: model, N: 120, M: 3, Beta: 0.25, Mutual: true, Seed: 5}
		if model == "er" {
			cfg.M = 300
		}
		g := MustGenerate(cfg)
		for _, e := range g.Edges() {
			if !g.HasEdge(e.To, e.From) {
				t.Fatalf("%s: edge (%d,%d) has no reverse", model, e.From, e.To)
			}
		}
	}
}

func TestERExactEdgeCount(t *testing.T) {
	g := MustGenerate(Config{Model: "er", N: 100, M: 250, Seed: 9})
	if g.NumEdges() != 250 {
		t.Fatalf("er edges = %d, want 250", g.NumEdges())
	}
	gm := MustGenerate(Config{Model: "er", N: 100, M: 250, Mutual: true, Seed: 9})
	if gm.NumEdges() != 500 {
		t.Fatalf("er mutual edges = %d, want 500", gm.NumEdges())
	}
}

func TestBAHeavyTail(t *testing.T) {
	g := MustGenerate(Config{Model: "ba", N: 3000, M: 4, Seed: 11})
	in := g.InDegrees()
	sort.Sort(sort.Reverse(sort.IntSlice(in)))
	// The hub should dominate the median node by a wide margin in a
	// preferential-attachment graph.
	median := in[len(in)/2]
	if median == 0 {
		median = 1
	}
	if in[0] < 10*median {
		t.Fatalf("no heavy tail: max in-degree %d vs median %d", in[0], median)
	}
}

func TestWSRegularWhenNoRewire(t *testing.T) {
	g := MustGenerate(Config{Model: "ws", N: 60, M: 3, Beta: 0, Seed: 2})
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.OutDegree(u) != 3 {
			t.Fatalf("node %d out-degree %d, want 3", u, g.OutDegree(u))
		}
	}
}

func TestConfigErrors(t *testing.T) {
	bad := []Config{
		{Model: "nope", N: 10, M: 1},
		{Model: "ba", N: 1, M: 1},
		{Model: "ba", N: 10, M: 0},
		{Model: "er", N: 10, M: 0},
		{Model: "er", N: 10, M: 10_000},
		{Model: "ws", N: 10, M: 10},
		{Model: "copying", N: 10, M: 0},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) accepted invalid config", cfg)
		}
	}
}

func TestSBMValidation(t *testing.T) {
	bad := []Config{
		{Model: "sbm", N: 100, M: 3, Blocks: 1},
		{Model: "sbm", N: 6, M: 3, Blocks: 4},
		{Model: "sbm", N: 100, M: 0, Blocks: 4},
		{Model: "sbm", N: 100, M: 3, Blocks: 4, Beta: 1.5},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) accepted invalid config", cfg)
		}
	}
}

func TestSBMCommunityStructure(t *testing.T) {
	cfg := Config{Model: "sbm", N: 400, M: 6, Blocks: 4, Beta: 0.1, Seed: 30}
	g := MustGenerate(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Measure the realized cross-community edge fraction: must be near Beta.
	size := cfg.N / cfg.Blocks
	cross := 0
	for _, e := range g.Edges() {
		if int(e.From)/size != int(e.To)/size {
			cross++
		}
	}
	frac := float64(cross) / float64(g.NumEdges())
	if frac < 0.05 || frac > 0.2 {
		t.Fatalf("cross-community fraction %v, want ~0.1", frac)
	}
}

func TestSBMDeterministic(t *testing.T) {
	cfg := Config{Model: "sbm", N: 200, M: 4, Blocks: 5, Beta: 0.2, Seed: 31}
	a, b := MustGenerate(cfg), MustGenerate(cfg)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestSBMMutual(t *testing.T) {
	g := MustGenerate(Config{Model: "sbm", N: 120, M: 3, Blocks: 3, Beta: 0.3, Mutual: true, Seed: 32})
	for _, e := range g.Edges() {
		if !g.HasEdge(e.To, e.From) {
			t.Fatalf("edge (%d,%d) not mutual", e.From, e.To)
		}
	}
}

func TestDegreeSamplerMeanCalibrated(t *testing.T) {
	// The power-law out-degree sampler must realize mean ≈ M.
	for _, m := range []int{3, 7, 12} {
		for _, exp := range []float64{1.9, 2.2, 2.6} {
			cfg := Config{Model: "ba", M: m, TailExp: exp}
			sample := degreeSampler(cfg)
			r := rng.New(uint64(m)*100 + uint64(exp*10))
			sum, n := 0, 50000
			maxSeen := 0
			for i := 0; i < n; i++ {
				d := sample(r)
				if d < 1 {
					t.Fatalf("m=%d exp=%v: degree %d < 1", m, exp, d)
				}
				if d > maxSeen {
					maxSeen = d
				}
				sum += d
			}
			mean := float64(sum) / float64(n)
			if mean < 0.7*float64(m) || mean > 1.4*float64(m) {
				t.Fatalf("m=%d exp=%v: realized mean %v", m, exp, mean)
			}
			if maxSeen < 3*m {
				t.Fatalf("m=%d exp=%v: no tail (max %d)", m, exp, maxSeen)
			}
		}
	}
}

func TestRecipProducesReciprocity(t *testing.T) {
	g := MustGenerate(Config{Model: "ba", N: 2000, M: 5, Recip: 0.5, Seed: 40})
	p := g.Profile()
	// Each original link is reciprocated w.p. 0.5: overall reciprocity of
	// the directed edge set is 2·0.5/(1+0.5) = 2/3.
	if p.Reciprocity < 0.55 || p.Reciprocity > 0.8 {
		t.Fatalf("reciprocity %v, want ~0.67", p.Reciprocity)
	}
	g0 := MustGenerate(Config{Model: "ba", N: 2000, M: 5, Seed: 40})
	if p0 := g0.Profile(); p0.Reciprocity > 0.05 {
		t.Fatalf("recip=0 graph has reciprocity %v", p0.Reciprocity)
	}
}

func TestClusteringRaisesTriangles(t *testing.T) {
	plain := MustGenerate(Config{Model: "ba", N: 1500, M: 4, Mutual: true, Seed: 41})
	clustered := MustGenerate(Config{Model: "ba", N: 1500, M: 4, Mutual: true, Clustering: 0.7, Seed: 41})
	if tc, tp := countTriangles(clustered), countTriangles(plain); tc <= tp {
		t.Fatalf("clustering did not raise triangles: %d <= %d", tc, tp)
	}
}

// countTriangles counts directed 3-cycles through sorted adjacency.
func countTriangles(g *graph.Graph) int {
	n := g.NumNodes()
	count := 0
	for u := graph.NodeID(0); int(u) < n; u++ {
		nbrs, _ := g.Neighbors(u)
		for _, v := range nbrs {
			if v <= u {
				continue
			}
			nv, _ := g.Neighbors(v)
			for _, w := range nv {
				if w > v && g.HasEdge(u, w) {
					count++
				}
			}
		}
	}
	return count
}

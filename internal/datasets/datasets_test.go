package datasets

import (
	"strings"
	"testing"
)

const testScale = 0.05 // smallest supported scale keeps tests fast

func TestNamesTwelve(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("got %d names: %v", len(names), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
		if !strings.Contains(n, "-") {
			t.Fatalf("name %s lacks suffix", n)
		}
	}
}

func TestLoadAssigned(t *testing.T) {
	for _, name := range []string{"nethept-W", "nethept-F", "epinions-W", "slashdot-F"} {
		d, err := Load(name, Config{Scale: testScale})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Graph == nil || d.Graph.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if err := d.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Log != nil || d.GroundTruth != nil {
			t.Fatalf("%s: assigned dataset has learning artifacts", name)
		}
		if strings.HasSuffix(name, "-F") {
			for _, e := range d.Graph.Edges() {
				if e.Prob != 0.1 {
					t.Fatalf("%s: fixed edge prob %v", name, e.Prob)
				}
			}
		}
	}
}

func TestLoadFixedVsWCDiffer(t *testing.T) {
	w, err := Load("epinions-W", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Load("epinions-F", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph.NumEdges() != f.Graph.NumEdges() {
		t.Fatal("same topology expected")
	}
	if w.Graph.MeanProb() == f.Graph.MeanProb() {
		t.Fatal("WC and fixed produced identical probabilities")
	}
}

func TestLoadLearnt(t *testing.T) {
	for _, name := range []string{"twitter-S", "twitter-G"} {
		d, err := Load(name, Config{Scale: testScale})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Log == nil || d.GroundTruth == nil {
			t.Fatalf("%s: missing learning artifacts", name)
		}
		if d.Graph.NumEdges() == 0 {
			t.Fatalf("%s: learnt graph empty", name)
		}
		if d.Graph.NumEdges() > d.Topology.NumEdges() {
			t.Fatalf("%s: learnt more edges than the topology has", name)
		}
		if err := d.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestLearntMethodsShareTopologyAndLog(t *testing.T) {
	s, err := Load("twitter-S", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Load("twitter-G", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if s.Topology.NumEdges() != g.Topology.NumEdges() {
		t.Fatal("topologies differ between -S and -G")
	}
	if s.Log.NumEvents() != g.Log.NumEvents() {
		t.Fatal("logs differ between -S and -G")
	}
}

func TestLoadErrors(t *testing.T) {
	for _, name := range []string{"nope-W", "digg-W", "nethept-S", "digg", "digg-X"} {
		if _, err := Load(name, Config{Scale: testScale}); err == nil {
			t.Errorf("Load(%q) succeeded", name)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, err := Load("nethept-W", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("nethept-W", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestSeedReplicasDiffer(t *testing.T) {
	a, err := Load("nethept-W", Config{Scale: testScale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("nethept-W", Config{Scale: testScale, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := a.Graph.NumEdges() == b.Graph.NumEdges()
	if same {
		ea, eb := a.Graph.Edges(), b.Graph.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestDirectedFlag(t *testing.T) {
	d, err := Load("epinions-W", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Directed {
		t.Fatal("epinions should be directed")
	}
	u, err := Load("nethept-W", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if u.Directed {
		t.Fatal("nethept should be mutual")
	}
	// Mutual analog must actually have symmetric topology.
	for _, e := range u.Topology.Edges() {
		if !u.Topology.HasEdge(e.To, e.From) {
			t.Fatalf("mutual dataset has asymmetric edge %v", e)
		}
	}
}

func TestEdgeProbabilitiesSorted(t *testing.T) {
	d, err := Load("nethept-W", Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	ps := d.EdgeProbabilities()
	if len(ps) != d.Graph.NumEdges() {
		t.Fatalf("got %d probabilities for %d edges", len(ps), d.Graph.NumEdges())
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1] > ps[i] {
			t.Fatal("not sorted")
		}
	}
}

// TestGoyalProbsLargerThanSaito reproduces the Figure-3 observation that the
// Goyal estimator yields larger probabilities than Saito EM on the same log.
func TestGoyalProbsLargerThanSaito(t *testing.T) {
	s, err := Load("twitter-S", Config{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Load("twitter-G", Config{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Graph.MeanProb() <= s.Graph.MeanProb()*0.8 {
		t.Fatalf("Goyal mean %v not larger than Saito mean %v (paper's Fig 3 shape)",
			g.Graph.MeanProb(), s.Graph.MeanProb())
	}
}

func TestAnalogProfilesMatchDesign(t *testing.T) {
	// The structural knobs (tail skew, reciprocity) must actually manifest
	// in the materialized analogs.
	slash, err := Load("slashdot-F", Config{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	p := slash.Topology.Profile()
	if p.MedianOutDegree >= p.MeanOutDegree {
		t.Fatalf("slashdot analog lacks degree skew: median %v >= mean %v",
			p.MedianOutDegree, p.MeanOutDegree)
	}
	if p.Reciprocity < 0.05 {
		t.Fatalf("slashdot analog reciprocity %v too low", p.Reciprocity)
	}
	neth, err := Load("nethept-W", Config{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if pn := neth.Topology.Profile(); pn.Reciprocity != 1 {
		t.Fatalf("mutual analog reciprocity %v, want 1", pn.Reciprocity)
	}
}

// Package datasets materializes the paper's 12 experimental configurations
// (6 networks × 2 probability methods each) as scale-parameterized synthetic
// analogs. DESIGN.md §3 records the substitution rationale: the real
// datasets are unavailable offline, so each is replaced by a generated graph
// matched on directedness and degree-distribution shape, with probabilities
// either assigned (WC / fixed 0.1) or learnt (Saito EM / Goyal) from a
// synthetic propagation log simulated over a known ground truth.
//
// Names follow the paper's suffix convention: "-S" Saito-learnt, "-G"
// Goyal-learnt, "-W" weighted cascade, "-F" fixed 0.1.
package datasets

import (
	"fmt"
	"sort"
	"strings"

	"soi/internal/gen"
	"soi/internal/graph"
	"soi/internal/probs"
	"soi/internal/proplog"
)

// base describes one of the six network analogs at Scale = 1.
type base struct {
	name    string
	model   string
	n       int
	m       int
	beta    float64
	tail    float64 // out-degree tail exponent (0 = constant M)
	clust   float64 // triad-formation probability (graph clustering)
	recip   float64 // reciprocity of directed links (in/out degree coupling)
	mutual  bool
	learnt  bool    // true: probabilities learnt from a synthetic log
	truthLo float64 // ground-truth probability range for the synthetic log
	truthHi float64
	genSeed uint64
}

// The Scale=1 sizes are the paper's networks shrunk ~20x so that the full
// 12-configuration suite runs on a laptop; experiments scale up via Config.
// Reciprocity and ground-truth ranges are tuned so each configuration lands
// in the same cascade-size regime as the paper's Table 2 (tiny spheres for
// the learnt and WC configurations, giant supercritical spheres for the
// fixed-0.1 ones); see EXPERIMENTS.md for the measured match.
var bases = []base{
	{name: "digg", model: "ba", n: 3400, m: 6, tail: 2.0, recip: 0.3, mutual: false, learnt: true, truthLo: 0.01, truthHi: 0.14, genSeed: 101},
	{name: "flixster", model: "ba", n: 6800, m: 4, tail: 2.0, mutual: true, learnt: true, truthLo: 0.005, truthHi: 0.08, genSeed: 102},
	{name: "twitter", model: "ba", n: 1200, m: 14, tail: 2.0, mutual: true, learnt: true, truthLo: 0.006, truthHi: 0.07, genSeed: 103},
	{name: "nethept", model: "ba", n: 760, m: 3, tail: 1.9, mutual: true, learnt: false, genSeed: 104},
	{name: "epinions", model: "ba", n: 3800, m: 7, tail: 1.9, recip: 0.5, mutual: false, learnt: false, genSeed: 105},
	{name: "slashdot", model: "ba", n: 3850, m: 12, tail: 2.6, recip: 0.12, mutual: false, learnt: false, genSeed: 106},
}

// Config controls dataset materialization.
type Config struct {
	// Scale multiplies node counts; 1.0 is the default laptop scale
	// (paper sizes / ~20). Values below 0.05 are clamped to 0.05.
	Scale float64
	// Seed perturbs all generation seeds, letting experiments draw
	// independent replicas. 0 keeps the canonical datasets.
	Seed uint64
}

func (c *Config) defaults() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Scale < 0.05 {
		c.Scale = 0.05
	}
}

// Dataset is one fully-materialized configuration.
type Dataset struct {
	// Name is e.g. "digg-S" or "nethept-W".
	Name string
	// Directed reports whether the underlying analog is a directed network
	// (false = mutual-edge, the paper's treatment of undirected graphs).
	Directed bool
	// Method is one of "saito", "goyal", "wc", "fixed".
	Method string
	// Graph carries the final influence probabilities.
	Graph *graph.Graph
	// Topology is the unweighted network (placeholder probabilities).
	Topology *graph.Graph
	// GroundTruth is the probability assignment the log was simulated from;
	// nil for assigned configurations.
	GroundTruth *graph.Graph
	// Log is the synthetic propagation log; nil for assigned configurations.
	Log *proplog.Log
}

// Names returns the 12 configuration names in canonical order.
func Names() []string {
	var out []string
	for _, b := range bases {
		if b.learnt {
			out = append(out, b.name+"-S", b.name+"-G")
		} else {
			out = append(out, b.name+"-W", b.name+"-F")
		}
	}
	return out
}

// BaseNames returns the six network names.
func BaseNames() []string {
	out := make([]string, len(bases))
	for i, b := range bases {
		out[i] = b.name
	}
	return out
}

// Load materializes the named configuration.
func Load(name string, cfg Config) (*Dataset, error) {
	cfg.defaults()
	idx := strings.LastIndex(name, "-")
	if idx < 0 {
		return nil, fmt.Errorf("datasets: name %q lacks a -S/-G/-W/-F suffix", name)
	}
	baseName, suffix := name[:idx], name[idx+1:]
	var b *base
	for i := range bases {
		if bases[i].name == baseName {
			b = &bases[i]
			break
		}
	}
	if b == nil {
		return nil, fmt.Errorf("datasets: unknown network %q (have %v)", baseName, BaseNames())
	}

	topo, err := topology(b, cfg)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Name:     name,
		Directed: !b.mutual,
		Topology: topo,
	}

	switch suffix {
	case "S", "G":
		if !b.learnt {
			return nil, fmt.Errorf("datasets: %s is an assigned-probability network; use -W or -F", baseName)
		}
		if err := d.learn(b, cfg, suffix); err != nil {
			return nil, err
		}
	case "W":
		if b.learnt {
			return nil, fmt.Errorf("datasets: %s is a learnt-probability network; use -S or -G", baseName)
		}
		d.Method = "wc"
		d.Graph, err = probs.WeightedCascade(topo)
		if err != nil {
			return nil, err
		}
	case "F":
		if b.learnt {
			return nil, fmt.Errorf("datasets: %s is a learnt-probability network; use -S or -G", baseName)
		}
		d.Method = "fixed"
		d.Graph, err = probs.Fixed(topo, 0.1)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("datasets: unknown suffix %q (want S, G, W or F)", suffix)
	}
	return d, nil
}

func topology(b *base, cfg Config) (*graph.Graph, error) {
	n := int(float64(b.n) * cfg.Scale)
	if n < 20 {
		n = 20
	}
	gc := gen.Config{
		Model:      b.model,
		N:          n,
		M:          b.m,
		Beta:       b.beta,
		TailExp:    b.tail,
		Clustering: b.clust,
		Recip:      b.recip,
		Mutual:     b.mutual,
		Seed:       b.genSeed ^ cfg.Seed,
	}
	if gc.Model == "ws" && gc.M >= gc.N {
		gc.M = gc.N - 1
	}
	return gen.Generate(gc)
}

func (d *Dataset) learn(b *base, cfg Config, suffix string) error {
	truth, err := probs.Uniform(d.Topology, b.truthLo, b.truthHi, b.genSeed^cfg.Seed^0xA5A5)
	if err != nil {
		return err
	}
	d.GroundTruth = truth
	items := 3 * d.Topology.NumNodes()
	log, err := proplog.Generate(truth, proplog.GenerateConfig{
		Items:        items,
		SeedsPerItem: 2,
		Seed:         b.genSeed ^ cfg.Seed ^ 0x5A5A,
	})
	if err != nil {
		return err
	}
	d.Log = log
	switch suffix {
	case "S":
		d.Method = "saito"
		d.Graph, err = probs.Saito(d.Topology, log, probs.SaitoConfig{MaxIter: 60})
	case "G":
		d.Method = "goyal"
		d.Graph, err = probs.Goyal(d.Topology, log, probs.GoyalConfig{Window: 3})
	}
	return err
}

// LoadAll materializes every configuration (expensive: builds logs and runs
// the learners for the six learnt configurations).
func LoadAll(cfg Config) ([]*Dataset, error) {
	names := Names()
	out := make([]*Dataset, 0, len(names))
	for _, n := range names {
		d, err := Load(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("datasets: loading %s: %w", n, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// EdgeProbabilities returns the sorted multiset of edge probabilities of the
// final graph — the series behind the paper's Figure 3 CDFs.
func (d *Dataset) EdgeProbabilities() []float64 {
	out := make([]float64, 0, d.Graph.NumEdges())
	for _, e := range d.Graph.Edges() {
		out = append(out, e.Prob)
	}
	sort.Float64s(out)
	return out
}

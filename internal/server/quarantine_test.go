package server

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"soi/internal/blockfile"
	"soi/internal/cascade"
	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/telemetry"
)

// writeCorrupted writes the serialized v03 index to a temp file with one byte
// flipped in the middle of each listed world's block: the directory stays
// intact, so OpenMmap succeeds and the corruption surfaces as per-world
// quarantine at fault-in time.
func writeCorrupted(t *testing.T, data []byte, worlds []int) string {
	t.Helper()
	d := append([]byte(nil), data...)
	n := int(binary.LittleEndian.Uint32(d[12:16]))
	dir, err := blockfile.ParseDirectory(d[16:16+blockfile.EntrySize*n], n)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range worlds {
		e := dir[w]
		d[e.Off+int64(e.Len)/2] ^= 0xFF
	}
	p := filepath.Join(t.TempDir(), "corrupt.idx")
	if err := os.WriteFile(p, d, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// quarantineFixture builds a clean index, serializes it, corrupts the listed
// worlds on disk, and returns a server over the memory-mapped file plus the
// clean in-memory index as the exact oracle.
func quarantineFixture(t *testing.T, corrupt []int) (*Server, *index.Index) {
	t.Helper()
	g := testGraph(t)
	clean, err := index.Build(g, index.Options{Samples: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := clean.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	mx, err := index.OpenMmap(writeCorrupted(t, buf.Bytes(), corrupt), g,
		index.MmapOptions{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mx.Close() })
	s, err := New(Config{
		Graph: g, Index: mx, Telemetry: telemetry.New(),
		MaxInflight: 4, MaxQueue: 16, CostSamples: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, clean
}

// TestQuarantineDegradesTo206 is the end-to-end corruption story: a soid
// serving a memory-mapped index with one corrupt world block answers 206 with
// worlds_quarantined reported and an error_bound wide enough to bracket the
// exact answer computed over the uncorrupted index.
func TestQuarantineDegradesTo206(t *testing.T) {
	s, clean := quarantineFixture(t, []int{2})

	rec, body := do(t, s, "/v1/spread?seeds=0,9&method=index")
	if rec.Code != 206 {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body.String())
	}
	if body["partial"] != true {
		t.Fatalf("partial %v, want true", body["partial"])
	}
	if q, _ := body["worlds_quarantined"].(float64); q < 1 {
		t.Fatalf("worlds_quarantined %v, want >= 1", body["worlds_quarantined"])
	}
	wantLive := float64(clean.NumWorlds() - 1)
	if u, _ := body["worlds_used"].(float64); u != wantLive {
		t.Fatalf("worlds_used %v, want %v", body["worlds_used"], wantLive)
	}
	eb, _ := body["error_bound"].(float64)
	if eb <= 0 {
		t.Fatalf("error_bound %v, want > 0", body["error_bound"])
	}

	// The degraded estimate, widened by error_bound, must bracket the exact
	// spread over the full uncorrupted world sample.
	sc := clean.NewScratch()
	oracle := cascade.SpreadFromIndex(clean, []graph.NodeID{0, 9}, sc)
	got, _ := body["spread"].(float64)
	if math.Abs(got-oracle) > eb {
		t.Fatalf("degraded spread %v is more than error_bound %v from exact %v", got, eb, oracle)
	}

	// Degraded answers are never cached: the identical query misses again.
	rec2, _ := do(t, s, "/v1/spread?seeds=0,9&method=index")
	if rec2.Code != 206 || rec2.Header().Get("X-Cache") != "miss" {
		t.Fatalf("repeat query: status %d cache %q, want 206 miss", rec2.Code, rec2.Header().Get("X-Cache"))
	}

	// The other index-backed endpoints degrade the same way.
	if rec, body := do(t, s, "/v1/sphere/3?source=compute&samples=0"); rec.Code != 206 || body["partial"] != true {
		t.Fatalf("sphere: status %d partial %v, want 206 true", rec.Code, body["partial"])
	}
	if rec, _ := do(t, s, "/v1/modes/3?k=2"); rec.Code != 206 {
		t.Fatalf("modes: status %d, want 206", rec.Code)
	}
	if rec, _ := do(t, s, "/v1/stability?seeds=3&samples=5"); rec.Code != 206 {
		t.Fatalf("stability: status %d, want 206", rec.Code)
	}

	// /v1/info surfaces the quarantine count and the serving mode.
	if _, info := do(t, s, "/v1/info"); info["worlds_quarantined"].(float64) < 1 || info["mmap"] != true {
		t.Fatalf("info: worlds_quarantined %v mmap %v, want >=1 true", info["worlds_quarantined"], info["mmap"])
	}
}

// TestQuarantineAllWorlds503 drives the index to total loss: with every block
// corrupt there is no sample left to answer from, so index-backed queries
// fail with a retryable 503 "degraded" (the gateway's cue to fail over).
func TestQuarantineAllWorlds503(t *testing.T) {
	s, clean := quarantineFixture(t, func() []int {
		all := make([]int, 60)
		for i := range all {
			all[i] = i
		}
		return all
	}())
	_ = clean

	rec, body := do(t, s, "/v1/spread?seeds=0&method=index")
	if rec.Code != 503 {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	errObj, _ := body["error"].(map[string]any)
	if errObj["code"] != CodeDegraded {
		t.Fatalf("code %v, want %q", errObj["code"], CodeDegraded)
	}
	if !RetryableCode(CodeDegraded) {
		t.Fatal("degraded must be retryable so the gateway fails over")
	}
	// Every retryable 503 must carry a backoff hint in both forms, so the
	// gateway's Retry-After honoring applies before it fails over.
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After header")
	}
	if ms, _ := errObj["retry_after_ms"].(float64); ms <= 0 {
		t.Fatalf("degraded 503 retry_after_ms = %v, want > 0", errObj["retry_after_ms"])
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"soi/internal/trace"
)

// tracedServer is a test server with tracing enabled at full sampling, so
// even boring 200s are retained for inspection.
func tracedServer(t testing.TB, reqLog *trace.RequestLog) (*Server, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Options{Service: "soid", SampleRate: 1})
	s := newTestServer(t, func(c *Config) {
		c.Tracer = tr
		c.RequestLog = reqLog
	})
	return s, tr
}

func getTrace(t *testing.T, s *Server, id string) trace.TraceJSON {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+id, nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces/%s status %d: %s", id, rec.Code, rec.Body.String())
	}
	var tj trace.TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &tj); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	return tj
}

// TestRequestIDAndSpanTree drives one computed sphere query and checks the
// response's X-SOI-Request-ID resolves to a retained soi.trace/v1 tree with
// the serving-pipeline child spans.
func TestRequestIDAndSpanTree(t *testing.T) {
	var logBuf bytes.Buffer
	s, _ := tracedServer(t, trace.NewRequestLog(&logBuf))

	rec, _ := do(t, s, "/v1/sphere/13?source=compute&samples=20")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get(trace.RequestIDHeader)
	if len(id) != 32 {
		t.Fatalf("X-SOI-Request-ID = %q, want 32-hex trace id", id)
	}

	tj := getTrace(t, s, id)
	if tj.Schema != trace.Schema {
		t.Fatalf("schema = %q, want %q", tj.Schema, trace.Schema)
	}
	if tj.TraceID != id {
		t.Fatalf("trace id %q != request id %q", tj.TraceID, id)
	}
	if len(tj.Spans) != 1 {
		t.Fatalf("want one root span, got %d", len(tj.Spans))
	}
	root := tj.Spans[0]
	if root.Name != "soid.sphere" || root.HTTPStatus != 200 {
		t.Fatalf("root = %s status %d", root.Name, root.HTTPStatus)
	}
	names := map[string]bool{}
	var walk func(sp trace.SpanJSON)
	walk = func(sp trace.SpanJSON) {
		names[sp.Name] = true
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(root)
	for _, want := range []string{"cache.lookup", "singleflight.do", "admission.wait", "compute", "sphere.compute", "stability.estimate"} {
		if !names[want] {
			t.Errorf("span %q missing from tree: %v", want, names)
		}
	}

	// The request log carries the same trace id.
	var logRec trace.RequestRecord
	if err := json.Unmarshal(logBuf.Bytes(), &logRec); err != nil {
		t.Fatalf("request log decode: %v (%q)", err, logBuf.String())
	}
	if logRec.TraceID != id || logRec.Endpoint != "sphere" || logRec.Status != 200 || logRec.Cache != "miss" {
		t.Fatalf("request log record = %+v", logRec)
	}
	if logRec.Service != "soid" || logRec.DurationMS <= 0 {
		t.Fatalf("request log record = %+v", logRec)
	}
}

// TestTraceDegradedEvent forces a budget-truncated 206 and checks the trace
// records the degradation event with its accounting, and that the trace is
// retained as "partial" even at sample rate 0.
func TestTraceDegradedEvent(t *testing.T) {
	var logBuf bytes.Buffer
	tr := trace.New(trace.Options{Service: "soid", SampleRate: -1})
	s := newTestServer(t, func(c *Config) {
		c.Tracer = tr
		c.RequestLog = trace.NewRequestLog(&logBuf)
	})

	// A microscopic budget truncates sampling: 206 with achieved < requested.
	rec, body := do(t, s, "/v1/stability?seeds=0&samples=4000&budget=1ns")
	if rec.Code != 206 {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body.String())
	}
	if body["partial"] != true {
		t.Fatalf("body not partial: %v", body)
	}
	id := rec.Header().Get(trace.RequestIDHeader)
	tj := getTrace(t, s, id)
	if tj.Retained != "partial" {
		t.Fatalf("retained = %q, want partial", tj.Retained)
	}
	root := tj.Spans[0]
	var ev *trace.EventJSON
	for i := range root.Events {
		if root.Events[i].Name == "degraded" {
			ev = &root.Events[i]
		}
	}
	if ev == nil {
		t.Fatalf("no degraded event on root: %+v", root.Events)
	}
	req := ev.Attrs["requested"].(float64)
	ach := ev.Attrs["achieved"].(float64)
	if req != 4000 || ach >= req {
		t.Fatalf("degraded event attrs = %+v", ev.Attrs)
	}
	if ev.Attrs["error_bound"].(float64) <= 0 {
		t.Fatalf("degraded event bound = %v", ev.Attrs["error_bound"])
	}

	// The log line carries the degradation accounting.
	var logRec trace.RequestRecord
	if err := json.Unmarshal(logBuf.Bytes(), &logRec); err != nil {
		t.Fatal(err)
	}
	if !logRec.Partial || logRec.Requested != 4000 || logRec.Achieved >= 4000 || logRec.ErrorBound <= 0 {
		t.Fatalf("log record = %+v", logRec)
	}
}

// TestTraceCacheHit checks a cache hit produces a trace whose cache.lookup
// span records the hit, and a log line with cache=hit.
func TestTraceCacheHit(t *testing.T) {
	var logBuf bytes.Buffer
	s, _ := tracedServer(t, trace.NewRequestLog(&logBuf))
	url := "/v1/sphere/7?source=compute&samples=10"
	if rec, _ := do(t, s, url); rec.Code != 200 {
		t.Fatalf("warmup status %d", rec.Code)
	}
	rec, _ := do(t, s, url)
	if rec.Header().Get("X-Cache") != "hit" {
		t.Fatal("second request not a cache hit")
	}
	id := rec.Header().Get(trace.RequestIDHeader)
	tj := getTrace(t, s, id)
	root := tj.Spans[0]
	if len(root.Children) != 1 || root.Children[0].Name != "cache.lookup" {
		t.Fatalf("cache-hit tree = %+v", root.Children)
	}
	if root.Children[0].Attrs["hit"] != true {
		t.Fatalf("cache.lookup attrs = %+v", root.Children[0].Attrs)
	}
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines = %d, want 2", len(lines))
	}
	var hitRec trace.RequestRecord
	if err := json.Unmarshal([]byte(lines[1]), &hitRec); err != nil {
		t.Fatal(err)
	}
	if hitRec.Cache != "hit" {
		t.Fatalf("hit record = %+v", hitRec)
	}
}

// TestTraceErrorRetained checks 4xx requests are retained by the error rule
// and the root span carries the error code.
func TestTraceErrorRetained(t *testing.T) {
	tr := trace.New(trace.Options{Service: "soid", SampleRate: -1})
	s := newTestServer(t, func(c *Config) { c.Tracer = tr })
	rec, _ := do(t, s, "/v1/sphere/99999")
	if rec.Code != 404 {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	id := rec.Header().Get(trace.RequestIDHeader)
	tj := getTrace(t, s, id)
	if tj.Retained != "error" {
		t.Fatalf("retained = %q, want error", tj.Retained)
	}
	if tj.Spans[0].Error != CodeNotFound || tj.Spans[0].HTTPStatus != 404 {
		t.Fatalf("root = %+v", tj.Spans[0])
	}
}

// TestExemplarOnLatencyHistogram checks the per-endpoint latency histogram
// carries the trace id of an observed request as an exemplar.
func TestExemplarOnLatencyHistogram(t *testing.T) {
	s, _ := tracedServer(t, nil)
	rec, _ := do(t, s, "/v1/sphere/3?source=compute&samples=5")
	id := rec.Header().Get(trace.RequestIDHeader)
	snap := s.mLatency["sphere"].Snapshot()
	if snap.ExemplarLast == nil || snap.ExemplarLast.TraceID != id {
		t.Fatalf("latency exemplar = %+v, want trace %s", snap.ExemplarLast, id)
	}
	if snap.ExemplarMax == nil {
		t.Fatal("max exemplar missing")
	}
}

// TestTracingDisabledByDefault checks a tracer-less server neither emits the
// request-id header nor serves /debug/traces.
func TestTracingDisabledByDefault(t *testing.T) {
	s := newTestServer(t, nil)
	rec, _ := do(t, s, "/v1/info")
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get(trace.RequestIDHeader); got != "" {
		t.Fatalf("request id on untraced server: %q", got)
	}
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec2.Code != http.StatusNotFound {
		t.Fatalf("/debug/traces status %d, want 404", rec2.Code)
	}
}

// --- Satellite: Retry-After on every retryable 503 -----------------------

// TestRetryAfterOnDrain503 checks the draining 503 carries both the
// Retry-After header and the retry_after_ms hint.
func TestRetryAfterOnDrain503(t *testing.T) {
	s := newTestServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec, body := do(t, s, "/v1/sphere/1")
	if rec.Code != 503 {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("drain 503 missing Retry-After header")
	}
	errObj := body["error"].(map[string]any)
	if errObj["code"] != CodeDraining || errObj["retry_after_ms"].(float64) <= 0 {
		t.Fatalf("drain envelope = %v", errObj)
	}
}

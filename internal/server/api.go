// Package server implements the soid query-serving daemon: a long-running
// HTTP/JSON server that loads a graph, a prebuilt cascade index, and an
// optional sphere store once, then answers concurrent sphere / stability /
// seed-selection / spread / reliability / mode queries from memory.
//
// The serving pipeline per request is:
//
//	mux → drain check → cache lookup → singleflight → admission → compute
//
// with an LRU result cache keyed on (endpoint, canonicalized params, index
// fingerprint), deduplication of identical in-flight queries, a bounded
// admission queue that sheds load with 429 + Retry-After, and per-request
// wall-clock budgets mapped onto the checkpoint Budget machinery — a budget
// that truncates sampling yields HTTP 206 with the achieved sample count and
// a Theorem-2-style error bound instead of an error.
//
// Degraded indexes get the same treatment: when a memory-mapped index has
// quarantined corrupt world blocks, estimates cover only the surviving
// worlds, so index-backed endpoints answer 206 with worlds_used /
// worlds_quarantined and a Hoeffding bound re-derived at the live world
// count. An index that has lost every world answers 503 with a retryable
// code so the gateway fails over to a healthy replica.
package server

import "soi/internal/checkpoint"

// partialInfo annotates a 206 response: how much sampling completed before
// the budget's deadline and the resulting error bound. Embedded by every
// response type with budgeted sampling; all-zero (the common case) renders
// nothing.
type partialInfo struct {
	// Partial is true when the per-request budget truncated sampling.
	Partial bool `json:"partial,omitempty"`
	// Achieved is the number of samples completed before the deadline.
	Achieved int `json:"achieved,omitempty"`
	// Requested is the number of samples the request asked for.
	Requested int `json:"requested,omitempty"`
	// ErrorBound is the additive error bound at the achieved sample count,
	// in the same units as the estimate it annotates. When both budget
	// truncation and quarantine degraded the answer, the two bounds sum (a
	// conservative union bound).
	ErrorBound float64 `json:"error_bound,omitempty"`
	// WorldsUsed / WorldsQuarantined report index degradation: corrupt world
	// blocks quarantined by the memory-mapped loader drop out of every
	// estimate, which then covers only WorldsUsed of the index's worlds.
	WorldsUsed        int `json:"worlds_used,omitempty"`
	WorldsQuarantined int `json:"worlds_quarantined,omitempty"`
}

func partialOf(pe *checkpoint.PartialError, scale float64) partialInfo {
	if pe == nil {
		return partialInfo{}
	}
	return partialInfo{
		Partial:    true,
		Achieved:   pe.Achieved,
		Requested:  pe.Requested,
		ErrorBound: pe.Bound * scale,
	}
}

// mergePartial combines a budget-truncation annotation with a
// quarantine-degradation annotation: either alone makes the response
// partial, and their additive error bounds sum.
func mergePartial(budget, quarantine partialInfo) partialInfo {
	out := budget
	out.Partial = budget.Partial || quarantine.Partial
	out.ErrorBound = budget.ErrorBound + quarantine.ErrorBound
	out.WorldsUsed = quarantine.WorldsUsed
	out.WorldsQuarantined = quarantine.WorldsQuarantined
	return out
}

// partialFields exposes the embedded annotation through partialCarrier: any
// response struct embedding partialInfo satisfies it by promotion, so the
// endpoint wrapper can read degradation facts for the request log and trace
// events without knowing the concrete response type.
func (p partialInfo) partialFields() partialInfo { return p }

type partialCarrier interface{ partialFields() partialInfo }

// partialStatus maps an annotation to its HTTP status: 206 for any partial
// answer, 200 otherwise.
func partialStatus(p partialInfo) int {
	if p.Partial {
		return 206
	}
	return 200
}

// Error codes carried by every non-2xx /v1 response. They are the machine
// contract: the soigw router decides retryable-vs-permanent from the code,
// never by matching message strings.
const (
	CodeBadRequest = "bad_request"      // malformed request; permanent
	CodeNotFound   = "not_found"        // unknown node/resource; permanent
	CodeConflict   = "conflict"         // endpoint needs an artifact the daemon did not load; permanent
	CodeOverloaded = "overloaded"       // admission queue full; retry after backoff
	CodeBudget     = "budget_too_small" // budget expired before any result; retry with a larger budget
	CodeDraining   = "draining"         // daemon is shutting down; fail over to a replica
	CodeLoading    = "loading"          // daemon is still loading artifacts; retry shortly
	CodeDegraded   = "degraded"         // index lost every world to quarantine; fail over to a replica
	CodeCanceled   = "canceled"         // client went away mid-request
	CodeInternal   = "internal"         // unexpected server-side failure
)

// RetryableCode reports whether a request that failed with code is worth
// retrying (possibly against another replica) without changing the request.
func RetryableCode(code string) bool {
	switch code {
	case CodeOverloaded, CodeDraining, CodeLoading, CodeDegraded:
		return true
	}
	return false
}

// ErrorInfo is the error object inside every non-2xx response body.
type ErrorInfo struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail; clients must not parse it.
	Message string `json:"message"`
	// RetryAfterMS, when non-zero, is the server's backoff hint.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// ErrorEnvelope is the JSON body of every non-2xx response:
// {"error":{"code":...,"message":...,"retry_after_ms":...}}.
type ErrorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

// ReadyResponse is the body of GET /readyz on both soid and soigw. It
// surfaces the loaded artifact fingerprints so a router can verify a replica
// serves the shard the topology manifest promises before sending it traffic.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	// GraphFingerprint / IndexFingerprint are %016x of the loaded artifacts;
	// empty while loading.
	GraphFingerprint string `json:"graph_fingerprint,omitempty"`
	IndexFingerprint string `json:"index_fingerprint,omitempty"`
	SpheresLoaded    bool   `json:"spheres_loaded,omitempty"`
	SketchLoaded     bool   `json:"sketch_loaded,omitempty"`
}

// sphereResponse answers GET /v1/sphere/{node}.
type sphereResponse struct {
	// Node is the queried node, in original (file) id space.
	Node int64 `json:"node"`
	// Sphere is the typical cascade of Node, sorted, in original ids.
	Sphere []int64 `json:"sphere"`
	Size   int     `json:"size"`
	// SampleCost is the training cost ρ̃ of the sphere over the index worlds.
	SampleCost float64 `json:"sample_cost"`
	// Stability is the held-out stability estimate ρ (present when the
	// request sampled it; -1 in stored spheres that carry none).
	Stability *float64 `json:"stability,omitempty"`
	// StabilitySamples is how many held-out cascades the estimate used.
	StabilitySamples int `json:"stability_samples,omitempty"`
	// Source is "store" (precomputed sphere store), "computed", or "sketch".
	Source string `json:"source"`
	// Estimator is "sketch" when the answer came from the loaded combined
	// bottom-k sketch; empty (dense) otherwise. Sketch answers carry the
	// Cohen (ε, δ=0.05) bound in error_bound.
	Estimator string `json:"estimator,omitempty"`
	// EstimatedSize is the sketch-estimated expected cascade magnitude
	// (estimator=sketch only; the sketch knows sizes, not members).
	EstimatedSize float64 `json:"estimated_size,omitempty"`
	partialInfo
}

// stabilityResponse answers GET /v1/stability.
type stabilityResponse struct {
	Seeds      []int64 `json:"seeds"`
	Set        []int64 `json:"set"`
	Size       int     `json:"size"`
	SampleCost float64 `json:"sample_cost"`
	Stability  float64 `json:"stability"`
	Samples    int     `json:"samples"`
	partialInfo
}

// seedsResponse answers GET /v1/seeds.
type seedsResponse struct {
	K int `json:"k"`
	// Seeds in selection order, original ids.
	Seeds []int64 `json:"seeds"`
	// Gains are the per-seed marginal coverage gains (covered-node units).
	Gains []float64 `json:"gains"`
	// Objective is the total sphere coverage of the selection.
	Objective float64 `json:"objective"`
	// Coverage is Objective / n.
	Coverage        float64 `json:"coverage"`
	LazyEvaluations int     `json:"lazy_evaluations"`
	// Estimator is "sketch" for SKIM-style sketch-space selection (Gains and
	// Objective are then in expected-spread units); empty for the dense
	// max-cover over the sphere store.
	Estimator string `json:"estimator,omitempty"`
	// ErrorBound is the additive Cohen (ε, δ=0.05) bound on Objective
	// (estimator=sketch only).
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// spreadResponse answers GET /v1/spread.
type spreadResponse struct {
	Seeds  []int64 `json:"seeds"`
	Spread float64 `json:"spread"`
	// Method is "index" (expected spread over the loaded index's worlds) or
	// "mc" (fresh Monte-Carlo simulations under the request budget).
	Method string `json:"method"`
	// Trials is the Monte-Carlo trial count (method "mc" only).
	Trials int `json:"trials,omitempty"`
	// Estimator is "sketch" when the spread came from the loaded combined
	// bottom-k sketch (error_bound then carries the Cohen ε·estimate bound
	// at δ=0.05); empty for the dense estimators.
	Estimator string `json:"estimator,omitempty"`
	partialInfo
}

// reliabilityResponse answers GET /v1/reliability.
type reliabilityResponse struct {
	Sources   []int64 `json:"sources"`
	Threshold float64 `json:"threshold"`
	Nodes     []int64 `json:"nodes"`
	Count     int     `json:"count"`
	Samples   int     `json:"samples"`
	partialInfo
}

// modeJSON is one cascade mode in a modesResponse.
type modeJSON struct {
	Median      []int64 `json:"median"`
	Size        int     `json:"size"`
	Probability float64 `json:"probability"`
	Cost        float64 `json:"cost"`
}

// modesResponse answers GET /v1/modes/{node}.
type modesResponse struct {
	Node               int64      `json:"node"`
	K                  int        `json:"k"`
	Modes              []modeJSON `json:"modes"`
	TakeoffProbability float64    `json:"takeoff_probability"`
	partialInfo
}

// infoResponse answers GET /v1/info.
type infoResponse struct {
	Nodes  int `json:"nodes"`
	Edges  int `json:"edges"`
	Worlds int `json:"worlds"`
	// WorldsQuarantined counts index world blocks quarantined for corruption
	// (always present, normally 0 — a non-zero value means the index file
	// needs soifsck and answers are 206-degraded).
	WorldsQuarantined int `json:"worlds_quarantined"`
	// Mmap is true when the index serves page-on-demand from a mapped file
	// rather than an eager in-memory load.
	Mmap bool `json:"mmap"`
	// GraphFingerprint and IndexFingerprint identify the loaded artifacts
	// (soi.Fingerprint / Index.Fingerprint, %016x); clients validate that
	// they are talking to the dataset they think they are.
	GraphFingerprint string `json:"graph_fingerprint"`
	IndexFingerprint string `json:"index_fingerprint"`
	SpheresLoaded    bool   `json:"spheres_loaded"`
	SketchLoaded     bool   `json:"sketch_loaded"`
	CacheEntries     int    `json:"cache_entries"`
	UptimeSeconds    int64  `json:"uptime_seconds"`
}

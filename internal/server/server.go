package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soi/internal/checkpoint"
	"soi/internal/core"
	"soi/internal/fault"
	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/infmax"
	"soi/internal/sketch"
	"soi/internal/telemetry"
	"soi/internal/trace"
)

// Config assembles a Server. Graph and Index are required; everything else
// has serving-sensible defaults.
type Config struct {
	// Graph is the loaded probabilistic graph (required).
	Graph *graph.Graph
	// OrigIDs maps dense node ids to the original ids of the graph file;
	// nil means the two id spaces coincide. Requests and responses use
	// original ids.
	OrigIDs []int64
	// Index is the prebuilt cascade index over Graph (required).
	Index *index.Index
	// Spheres is the optional precomputed sphere store (LoadSpheres output);
	// it enables /v1/seeds and the /v1/sphere store fast path. Must have one
	// entry per graph node.
	Spheres []core.Result
	// Sketch is the optional combined bottom-k reachability sketch built
	// over Index; it enables estimator=sketch on /v1/{spread,sphere,seeds}.
	// Must be fingerprint-keyed to Index.
	Sketch *sketch.Sketch
	// Model is the propagation model the index was built with (the index
	// format does not record it); server-side sampling must match it.
	Model index.Model
	// Telemetry receives request counters, per-endpoint latency histograms,
	// cache and admission metrics; nil disables instrumentation.
	Telemetry *telemetry.Registry
	// Tracer records per-request span trees (root-or-continued via the
	// incoming traceparent header) with tail-based retention, served on
	// /debug/traces; nil disables tracing at one nil check per event.
	Tracer *trace.Tracer
	// RequestLog receives one structured JSONL line per /v1 request; nil
	// disables request logging.
	RequestLog *trace.RequestLog

	// CacheSize bounds the LRU result cache in entries; 0 selects 4096,
	// negative disables caching.
	CacheSize int
	// MaxInflight bounds concurrently computing requests; 0 selects
	// GOMAXPROCS.
	MaxInflight int
	// MaxQueue bounds requests waiting for a compute slot beyond
	// MaxInflight; 0 selects 4*MaxInflight, negative disables queueing
	// (immediate 429 when all slots are busy).
	MaxQueue int
	// DefaultBudget is the per-request wall-clock budget when the request
	// carries no budget parameter; 0 selects 2s.
	DefaultBudget time.Duration
	// MaxBudget caps the per-request budget parameter; 0 selects 30s.
	MaxBudget time.Duration
	// CostSamples is the default held-out sample count for stability
	// estimates; 0 selects 200.
	CostSamples int
	// Trials is the default Monte-Carlo trial count for /v1/spread
	// method=mc; 0 selects 1000.
	Trials int
	// Seed seeds server-side sampling (stability, spread, reliability).
	// Fixed per process so identical queries are deterministic and cacheable.
	Seed uint64
}

func (c Config) cacheSize() int {
	if c.CacheSize == 0 {
		return 4096
	}
	if c.CacheSize < 0 {
		return 0
	}
	return c.CacheSize
}

func (c Config) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxQueue() int {
	if c.MaxQueue == 0 {
		return 4 * c.maxInflight()
	}
	if c.MaxQueue < 0 {
		return 0
	}
	return c.MaxQueue
}

func (c Config) defaultBudget() time.Duration {
	if c.DefaultBudget <= 0 {
		return 2 * time.Second
	}
	return c.DefaultBudget
}

func (c Config) maxBudget() time.Duration {
	if c.MaxBudget <= 0 {
		return 30 * time.Second
	}
	return c.MaxBudget
}

func (c Config) costSamples() int {
	if c.CostSamples <= 0 {
		return 200
	}
	return c.CostSamples
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 1000
	}
	return c.Trials
}

// Server is the query-serving daemon core: immutable loaded artifacts plus
// the serving pipeline (cache, singleflight, admission). All methods are
// safe for concurrent use.
type Server struct {
	cfg     Config
	g       *graph.Graph
	x       *index.Index
	spheres []core.Result
	sketch  *sketch.Sketch // combined bottom-k sketch for estimator=sketch
	tcSets  infmax.Spheres // extracted sphere sets for /v1/seeds

	origIDs []int64                // dense -> original; nil = identity
	denseOf map[int64]graph.NodeID // original -> dense; nil = identity

	graphFP uint64
	indexFP uint64
	fpHex   string // cache-key suffix binding entries to the loaded index

	cache   *lruCache
	flights *flightGroup
	adm     *admission
	scratch sync.Pool // *index.Scratch

	mux      *http.ServeMux
	srv      *http.Server
	done     chan struct{}
	draining atomic.Bool
	started  time.Time

	mRequests *telemetry.Counter
	mPartials *telemetry.Counter
	mRejected *telemetry.Counter
	mErrors   *telemetry.Counter
	mSketch   *telemetry.Counter
	mLatency  map[string]*telemetry.Histogram
	mByName   map[string]*telemetry.Counter
}

// endpointNames are the serving endpoints with per-endpoint metrics.
var endpointNames = []string{"sphere", "stability", "seeds", "spread", "reliability", "modes", "info"}

// New validates that the configured graph / index / sphere-store triple
// belongs together and assembles the serving pipeline. Mismatches are
// startup errors, not per-request surprises.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil {
		return nil, errors.New("server: Config.Graph is required")
	}
	if cfg.Index == nil {
		return nil, errors.New("server: Config.Index is required")
	}
	graphFP := checkpoint.NewHasher().Graph(cfg.Graph).Sum()
	if cfg.Index.Graph() != cfg.Graph {
		// The index was loaded against some other graph value; accept it only
		// if that graph hashes identically (same file loaded twice is fine).
		if ixFP := checkpoint.NewHasher().Graph(cfg.Index.Graph()).Sum(); ixFP != graphFP {
			return nil, fmt.Errorf("server: index was built for a different graph (graph fingerprint %016x, index graph fingerprint %016x)",
				graphFP, ixFP)
		}
	}
	if cfg.Spheres != nil && len(cfg.Spheres) != cfg.Graph.NumNodes() {
		return nil, fmt.Errorf("server: sphere store has %d spheres for a graph of %d nodes (graph fingerprint %016x) — was it computed for a different graph?",
			len(cfg.Spheres), cfg.Graph.NumNodes(), graphFP)
	}
	if cfg.OrigIDs != nil && len(cfg.OrigIDs) != cfg.Graph.NumNodes() {
		return nil, fmt.Errorf("server: %d original ids for %d nodes", len(cfg.OrigIDs), cfg.Graph.NumNodes())
	}
	if cfg.Sketch != nil {
		// A sketch is meaningless against any index but the one it was built
		// from: estimates would silently describe other worlds. Refuse at
		// startup, the same way a wrong-graph index is refused.
		if got, want := cfg.Sketch.IndexFingerprint(), cfg.Index.Fingerprint(); got != want {
			return nil, fmt.Errorf("server: sketch was built from a different index (sketch carries index fingerprint %016x, loaded index is %016x) — rebuild with sphere -sketch-out",
				got, want)
		}
		if cfg.Sketch.Nodes() != cfg.Graph.NumNodes() {
			return nil, fmt.Errorf("server: sketch covers %d nodes for a graph of %d", cfg.Sketch.Nodes(), cfg.Graph.NumNodes())
		}
	}

	tel := cfg.Telemetry
	s := &Server{
		cfg:     cfg,
		g:       cfg.Graph,
		x:       cfg.Index,
		spheres: cfg.Spheres,
		sketch:  cfg.Sketch,
		origIDs: cfg.OrigIDs,
		graphFP: graphFP,
		indexFP: cfg.Index.Fingerprint(),
		cache:   newLRUCache(cfg.cacheSize(), tel),
		flights: newFlightGroup(tel),
		adm:     newAdmission(cfg.maxInflight(), cfg.maxQueue(), tel),
		done:    make(chan struct{}),
		started: time.Now(),

		mRequests: tel.Counter("server.requests"),
		mPartials: tel.Counter("server.partials"),
		mRejected: tel.Counter("server.rejected_overload"),
		mErrors:   tel.Counter("server.errors"),
		mSketch:   tel.Counter("server.sketch_estimates"),
		mLatency:  make(map[string]*telemetry.Histogram, len(endpointNames)),
		mByName:   make(map[string]*telemetry.Counter, len(endpointNames)),
	}
	s.fpHex = fmt.Sprintf("%016x", s.indexFP)
	for _, name := range endpointNames {
		s.mLatency[name] = tel.Histogram("server.latency_ns." + name)
		s.mByName[name] = tel.Counter("server.req." + name)
	}
	if cfg.OrigIDs != nil {
		s.denseOf = make(map[int64]graph.NodeID, len(cfg.OrigIDs))
		for v, id := range cfg.OrigIDs {
			s.denseOf[id] = graph.NodeID(v)
		}
	}
	if cfg.Spheres != nil {
		s.tcSets = make(infmax.Spheres, len(cfg.Spheres))
		for v := range cfg.Spheres {
			s.tcSets[v] = cfg.Spheres[v].Set
		}
	}
	s.scratch.New = func() any { return s.x.NewScratch() }
	s.buildMux()
	return s, nil
}

// GraphFingerprint returns the FNV-1a fingerprint of the loaded graph.
func (s *Server) GraphFingerprint() uint64 { return s.graphFP }

// IndexFingerprint returns the content fingerprint of the loaded index.
func (s *Server) IndexFingerprint() uint64 { return s.indexFP }

// Handler returns the serving mux: the /v1 API, /healthz, and the debug
// endpoints (/metrics, /debug/vars, /debug/pprof/...) on the same mux.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	// Liveness: the process is up and able to answer. Stays 200 while
	// draining — a draining daemon is alive, and restarting it would abort
	// the drain. Readiness (should this replica receive traffic?) is /readyz.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		resp := ReadyResponse{
			Ready:            true,
			GraphFingerprint: fmt.Sprintf("%016x", s.graphFP),
			IndexFingerprint: s.fpHex,
			SpheresLoaded:    s.spheres != nil,
			SketchLoaded:     s.sketch != nil,
		}
		status := http.StatusOK
		if s.draining.Load() {
			resp.Ready = false
			resp.Reason = "draining"
			status = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	})
	mux.Handle("GET /v1/info", s.endpoint("info", false, s.handleInfo))
	mux.Handle("GET /v1/sphere/{node}", s.endpoint("sphere", true, s.handleSphere))
	mux.Handle("GET /v1/stability", s.endpoint("stability", true, s.handleStability))
	mux.Handle("GET /v1/seeds", s.endpoint("seeds", true, s.handleSeeds))
	mux.Handle("GET /v1/spread", s.endpoint("spread", true, s.handleSpread))
	mux.Handle("GET /v1/reliability", s.endpoint("reliability", true, s.handleReliability))
	mux.Handle("GET /v1/modes/{node}", s.endpoint("modes", true, s.handleModes))

	// The -debug-addr surface of the CLIs, mounted on the serving mux: one
	// listener serves queries and their own observability.
	mux.Handle("GET /metrics", s.cfg.Telemetry.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	// Retained traces: the list view and the full soi.trace/v1 span tree.
	// With a nil tracer these answer 404 "tracing disabled".
	mux.Handle("GET /debug/traces", s.cfg.Tracer.Handler("/debug/traces"))
	mux.Handle("GET /debug/traces/", s.cfg.Tracer.Handler("/debug/traces"))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Remote fault injection for cross-process chaos harnesses: only mounted
	// behind the SOI_FAILPOINTS_HTTP env gate — a production daemon must
	// never expose this by accident.
	if fault.HTTPEnabled() {
		mux.Handle("/debug/failpoints", fault.Handler())
	}
	s.mux = mux
}

// Start binds addr (":0" for ephemeral) and serves until Shutdown. It
// returns the resolved listen address once the listener is bound.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // ErrServerClosed on Shutdown is the normal path
	}()
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: new requests are refused with 503 while
// requests already admitted run to completion (bounded by ctx). Safe to call
// without Start (tests driving Handler directly); then it only flips the
// drain flag.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.srv == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

// result is a handler's outcome before marshaling: an HTTP status (200 or
// 206) and the response value.
type result struct {
	status int
	v      any
}

func ok(v any) result { return result{status: http.StatusOK, v: v} }

// apiError is a handler-raised client error with a definite status and
// machine-readable code. retryAfter, when non-zero, becomes the response's
// Retry-After header and retry_after_ms hint — every retryable 503 must
// carry one so the gateway's Retry-After honoring applies.
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *apiError {
	return &apiError{status: http.StatusNotFound, code: CodeNotFound, msg: fmt.Sprintf(format, args...)}
}

func conflict(format string, args ...any) *apiError {
	return &apiError{status: http.StatusConflict, code: CodeConflict, msg: fmt.Sprintf(format, args...)}
}

// budgetGrace is added to the request budget to form the hard context
// deadline: the Budget machinery degrades sampling gracefully at the budget
// instant, while the context kills runaway non-sampling work (greedy rounds,
// marshaling) only well past it. Without the gap, a tiny budget would hit
// ctx.Err() before the first sample and turn every 206 into a 503.
const budgetGrace = 5 * time.Second

// endpoint wraps a handler with the serving pipeline: tracing, metrics,
// drain check, cache, budget, singleflight, admission, and error mapping.
func (s *Server) endpoint(name string, cacheable bool, fn func(*http.Request) (result, error)) http.Handler {
	spanName := "soid." + name
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		s.mRequests.Inc()
		s.mByName[name].Inc()

		// Root-or-continued span: a bare client request roots a fresh trace;
		// a gateway leg carrying traceparent joins the gateway's trace. The
		// trace id is echoed as X-SOI-Request-ID so the client can quote it
		// at /debug/traces/{id}.
		rctx, span := s.cfg.Tracer.StartRequest(req, spanName,
			trace.String("endpoint", name), trace.String("path", req.URL.Path))
		if span != nil {
			req = req.WithContext(rctx)
			w.Header().Set(trace.RequestIDHeader, span.RequestID())
		}

		status := http.StatusOK
		errCode := ""
		cacheState := ""
		var pi partialInfo
		defer func() {
			dur := time.Since(start)
			s.mLatency[name].ObserveExemplar(dur.Nanoseconds(), span.RequestID())
			span.SetHTTPStatus(status)
			if errCode != "" {
				span.SetError(errCode)
			}
			span.End()
			if s.cfg.RequestLog != nil {
				s.cfg.RequestLog.Log(trace.RequestRecord{
					Service:    "soid",
					TraceID:    span.RequestID(),
					Endpoint:   name,
					Path:       req.URL.RequestURI(),
					Status:     status,
					DurationMS: float64(dur) / float64(time.Millisecond),
					Cache:      cacheState,
					ErrorCode:  errCode,
					Partial:    pi.Partial,
					Achieved:   pi.Achieved,
					Requested:  pi.Requested,
					ErrorBound: pi.ErrorBound,
				})
			}
		}()

		if s.draining.Load() {
			status, errCode = http.StatusServiceUnavailable, CodeDraining
			s.writeError(w, status, errCode, "server is draining", time.Second)
			return
		}

		key := ""
		useCache := cacheable && s.cfg.cacheSize() > 0
		if useCache {
			key = s.cacheKey(name, req)
			lspan := trace.Child(req.Context(), "cache.lookup")
			ent, hit := s.cache.get(key)
			lspan.SetAttrs(trace.Bool("hit", hit))
			lspan.End()
			if hit {
				status, pi, cacheState = ent.status, ent.partial, "hit"
				writeCached(w, ent, true)
				return
			}
			cacheState = "miss"
		}

		budget, err := s.requestBudget(req)
		if err != nil {
			status, errCode = http.StatusBadRequest, CodeBadRequest
			s.writeError(w, status, errCode, err.Error(), 0)
			return
		}
		deadline := start.Add(budget)
		ctx, cancel := context.WithDeadline(req.Context(), deadline.Add(budgetGrace))
		defer cancel()
		req = req.WithContext(withBudgetDeadline(ctx, deadline))

		compute := func() (*cached, error) {
			wspan := trace.Child(req.Context(), "admission.wait")
			err := s.adm.acquire(req.Context())
			wspan.End()
			if err != nil {
				return nil, err
			}
			defer s.adm.release()
			if err := fault.Hit(fault.ServerCompute); err != nil {
				return nil, err
			}
			cctx, cspan := trace.StartChild(req.Context(), "compute")
			res, err := fn(req.WithContext(cctx))
			if err != nil {
				cspan.SetError(err.Error())
				cspan.End()
				return nil, err
			}
			cspan.SetHTTPStatus(res.status)
			cspan.End()
			body, err := json.Marshal(res.v)
			if err != nil {
				return nil, err
			}
			ent := &cached{key: key, status: res.status, body: append(body, '\n')}
			if pc, ok := res.v.(partialCarrier); ok {
				ent.partial = pc.partialFields()
			}
			return ent, nil
		}

		var ent *cached
		var shared bool
		if useCache {
			fspan := trace.Child(req.Context(), "singleflight.do")
			ent, shared, err = s.flights.do(ctx, key, compute)
			fspan.SetAttrs(trace.Bool("shared", shared))
			fspan.End()
			if shared {
				cacheState = "shared"
			}
		} else {
			ent, err = compute()
		}
		if err != nil {
			status, errCode = s.writeMappedError(w, err)
			return
		}
		status, pi = ent.status, ent.partial
		if ent.status == http.StatusPartialContent {
			s.mPartials.Inc()
			// The degradation event ties the 206 to its cause: how much
			// sampling the budget bought and how many worlds quarantine took.
			span.Event("degraded",
				trace.Int("achieved", int64(pi.Achieved)),
				trace.Int("requested", int64(pi.Requested)),
				trace.Float("error_bound", pi.ErrorBound),
				trace.Int("worlds_used", int64(pi.WorldsUsed)),
				trace.Int("worlds_quarantined", int64(pi.WorldsQuarantined)))
		}
		// Only complete (200) results are cached: a 206 reflects this
		// request's budget, and replaying degraded data to a patient client
		// would be wrong.
		if useCache && ent.status == http.StatusOK {
			s.cache.put(ent)
		}
		writeCached(w, ent, false)
	})
}

func writeCached(w http.ResponseWriter, ent *cached, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.WriteHeader(ent.status)
	w.Write(ent.body)
}

// writeMappedError maps err onto the /v1 error envelope and returns the
// (status, code) it wrote, for the request's span and log line.
func (s *Server) writeMappedError(w http.ResponseWriter, err error) (int, string) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		s.writeError(w, ae.status, ae.code, ae.msg, ae.retryAfter)
		return ae.status, ae.code
	case errors.Is(err, errOverload):
		s.mRejected.Inc()
		s.writeError(w, http.StatusTooManyRequests, CodeOverloaded, err.Error(), time.Second)
		return http.StatusTooManyRequests, CodeOverloaded
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, checkpoint.ErrDeadline):
		s.writeError(w, http.StatusServiceUnavailable, CodeBudget,
			"request budget too small to produce a result; retry with a larger budget", time.Second)
		return http.StatusServiceUnavailable, CodeBudget
	case errors.Is(err, context.Canceled):
		// Client went away; status code is a formality.
		s.writeError(w, http.StatusServiceUnavailable, CodeCanceled, "request canceled", 0)
		return http.StatusServiceUnavailable, CodeCanceled
	default:
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
		return http.StatusInternalServerError, CodeInternal
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if status >= 400 && status != http.StatusTooManyRequests {
		s.mErrors.Inc()
	}
	WriteError(w, status, code, msg, retryAfter)
}

// WriteError writes the standard /v1 error envelope. Exported so the soigw
// gateway (and the loading Gate) emit byte-compatible errors.
func WriteError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: ErrorInfo{
		Code:         code,
		Message:      msg,
		RetryAfterMS: retryAfter.Milliseconds(),
	}})
}

// cacheKey canonicalizes the request into a cache key: endpoint, path (which
// carries {node}), sorted query parameters, and the index fingerprint, so a
// daemon restarted over different artifacts never replays stale entries.
func (s *Server) cacheKey(name string, req *http.Request) string {
	q := req.URL.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(req.URL.Path)
	b.WriteByte('?')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('&')
		}
		vs := q[k]
		sort.Strings(vs)
		for j, v := range vs {
			if j > 0 {
				b.WriteByte('&')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	b.WriteByte('#')
	b.WriteString(s.fpHex)
	return b.String()
}

// requestBudget parses the budget parameter (a Go duration), applying the
// configured default and cap.
func (s *Server) requestBudget(req *http.Request) (time.Duration, error) {
	v := req.URL.Query().Get("budget")
	if v == "" {
		return s.cfg.defaultBudget(), nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("bad budget %q: %v", v, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("budget must be positive, got %q", v)
	}
	if max := s.cfg.maxBudget(); d > max {
		d = max
	}
	return d, nil
}

// budgetKey carries the sampling deadline (as opposed to the hard context
// deadline, which includes budgetGrace) to the handlers.
type budgetKey struct{}

func withBudgetDeadline(ctx context.Context, deadline time.Time) context.Context {
	return context.WithValue(ctx, budgetKey{}, deadline)
}

// samplingBudget returns the checkpoint Budget for the request's sampling
// deadline.
func samplingBudget(ctx context.Context) checkpoint.Budget {
	if dl, ok := ctx.Value(budgetKey{}).(time.Time); ok {
		return checkpoint.Budget{Deadline: dl}
	}
	return checkpoint.Budget{}
}

// --- id translation -------------------------------------------------------

func (s *Server) orig(v graph.NodeID) int64 {
	if s.origIDs == nil {
		return int64(v)
	}
	return s.origIDs[v]
}

func (s *Server) origSlice(vs []graph.NodeID) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = s.orig(v)
	}
	return out
}

func (s *Server) dense(id int64) (graph.NodeID, bool) {
	if s.denseOf != nil {
		v, ok := s.denseOf[id]
		return v, ok
	}
	if id < 0 || id >= int64(s.g.NumNodes()) {
		return 0, false
	}
	return graph.NodeID(id), true
}

func (s *Server) pathNode(req *http.Request) (graph.NodeID, error) {
	raw := req.PathValue("node")
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, badRequest("bad node %q", raw)
	}
	v, ok := s.dense(id)
	if !ok {
		return 0, notFound("unknown node %d", id)
	}
	return v, nil
}

// queryNodes parses a comma-separated list of original node ids.
func (s *Server) queryNodes(req *http.Request, param string) ([]graph.NodeID, error) {
	raw := req.URL.Query().Get(param)
	if raw == "" {
		return nil, badRequest("missing %s parameter (comma-separated node ids)", param)
	}
	parts := strings.Split(raw, ",")
	out := make([]graph.NodeID, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, badRequest("bad %s entry %q", param, p)
		}
		v, ok := s.dense(id)
		if !ok {
			return nil, notFound("unknown node %d", id)
		}
		out = append(out, v)
	}
	return out, nil
}

func queryInt(req *http.Request, param string, def int) (int, error) {
	raw := req.URL.Query().Get(param)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequest("bad %s %q", param, raw)
	}
	return n, nil
}

package server

import (
	"os"
	"sync"
	"testing"

	"soi/internal/core"
	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/oracle"
	"soi/internal/sketch"
	"soi/internal/statcheck"
	"soi/internal/telemetry"
)

// The conformance fixture serves the paper's Figure-1 graph, whose exact
// cascade distribution the oracle enumerates, so every /v1 answer can be
// checked end to end — HTTP parsing, budget plumbing, and estimator —
// against ground truth.

const confEll = 20000

// confSketchK is the bottom-k size of the fixture's sketch: big enough for
// a tight Cohen bound, small enough that the sketch still compresses the
// n*ell = 100000 (node, world) reachability pairs.
const confSketchK = 1 << 16

func confGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	b.AddEdge(4, 0, 0.7)
	b.AddEdge(4, 1, 0.4)
	b.AddEdge(4, 3, 0.3)
	b.AddEdge(0, 1, 0.1)
	b.AddEdge(3, 1, 0.6)
	b.AddEdge(1, 0, 0.1)
	b.AddEdge(1, 2, 0.4)
	return b.MustBuild()
}

var (
	confOnce sync.Once
	confSrv  *Server
	confG    *graph.Graph
	confSph  []core.Result
	confErr  error
)

func conformanceServer(t testing.TB) (*Server, *graph.Graph, []core.Result) {
	t.Helper()
	confOnce.Do(func() {
		g := confGraph(t)
		x, err := index.Build(g, index.Options{Samples: confEll, Seed: 90})
		if err != nil {
			confErr = err
			return
		}
		// SOI_INDEX_MMAP=1 runs the whole conformance suite against the lazy
		// memory-mapped loader instead of the in-memory index: a serialize →
		// mmap → page-on-demand round trip must be statistically
		// indistinguishable from the index it serializes.
		if os.Getenv("SOI_INDEX_MMAP") == "1" {
			f, err := os.CreateTemp("", "soi-conf-*.idx")
			if err != nil {
				confErr = err
				return
			}
			f.Close()
			if confErr = x.SaveFile(f.Name()); confErr != nil {
				return
			}
			mx, err := index.OpenMmap(f.Name(), g, index.MmapOptions{})
			os.Remove(f.Name()) // the mapping outlives the directory entry
			if err != nil {
				confErr = err
				return
			}
			x = mx
		}
		spheres := core.ComputeAll(x, core.Options{CostSamples: 200, CostSeed: 91})
		// The sketch is built from the same index instance the server loads
		// (after any mmap swap), so its stored fingerprint matches the one
		// Config validation checks — exactly the sphere -sketch-out contract.
		sk, err := sketch.Build(x, sketch.Options{K: confSketchK, Seed: 93})
		if err != nil {
			confErr = err
			return
		}
		confSrv, confErr = New(Config{
			Graph:       g,
			Index:       x,
			Spheres:     spheres,
			Sketch:      sk,
			Telemetry:   telemetry.New(),
			MaxInflight: 8,
			MaxQueue:    256,
			CostSamples: confEll,
			Trials:      confEll,
			Seed:        92,
		})
		confG, confSph = g, spheres
	})
	if confErr != nil {
		t.Fatal(confErr)
	}
	return confSrv, confG, confSph
}

func bodyNodes(t testing.TB, body map[string]any, field string) []graph.NodeID {
	t.Helper()
	raw, ok := body[field].([]any)
	if !ok {
		t.Fatalf("response field %q = %v, want a list", field, body[field])
	}
	out := make([]graph.NodeID, len(raw))
	for i, v := range raw {
		f, ok := v.(float64)
		if !ok {
			t.Fatalf("response field %q entry %v not numeric", field, v)
		}
		out[i] = graph.NodeID(f)
	}
	return out
}

func bodyFloat(t testing.TB, body map[string]any, field string) float64 {
	t.Helper()
	f, ok := body[field].(float64)
	if !ok {
		t.Fatalf("response field %q = %v, want a number", field, body[field])
	}
	return f
}

// TestConformanceServerSphere: the computed sphere's held-out stability,
// served over HTTP, agrees with the oracle's exact rho of the returned set.
func TestConformanceServerSphere(t *testing.T) {
	s, g, _ := conformanceServer(t)
	dist, err := oracle.CascadeDistribution(g, []graph.NodeID{4})
	if err != nil {
		t.Fatal(err)
	}
	rec, body := do(t, s, "/v1/sphere/4?source=compute&samples=20000")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	sphere := bodyNodes(t, body, "sphere")
	statcheck.Close(t, "served sphere stability", bodyFloat(t, body, "stability"),
		dist.Rho(sphere), statcheck.Hoeffding(confEll))
}

// TestConformanceServerStability: seed-set stability through the HTTP layer.
func TestConformanceServerStability(t *testing.T) {
	s, g, _ := conformanceServer(t)
	dist, err := oracle.CascadeDistribution(g, []graph.NodeID{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rec, body := do(t, s, "/v1/stability?seeds=4,3&samples=20000")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	set := bodyNodes(t, body, "set")
	statcheck.Close(t, "served seed-set stability", bodyFloat(t, body, "stability"),
		dist.Rho(set), statcheck.Hoeffding(confEll))
}

// TestConformanceServerSpread checks both spread methods against the exact
// expected spread; each trial is in [0, n], so the bound scales by n.
func TestConformanceServerSpread(t *testing.T) {
	s, g, _ := conformanceServer(t)
	exact, err := oracle.ExpectedSpread(g, []graph.NodeID{4})
	if err != nil {
		t.Fatal(err)
	}
	b := statcheck.Hoeffding(confEll).Scale(float64(g.NumNodes()))

	rec, body := do(t, s, "/v1/spread?seeds=4&method=mc&trials=20000")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	statcheck.Close(t, "served MC spread", bodyFloat(t, body, "spread"), exact, b)

	rec, body = do(t, s, "/v1/spread?seeds=4&method=index")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	statcheck.Close(t, "served index spread", bodyFloat(t, body, "spread"), exact, b)
}

// TestConformanceServerReliability: threshold membership through HTTP,
// asserted only for nodes whose exact probability clears the threshold by
// more than the sampling tolerance.
func TestConformanceServerReliability(t *testing.T) {
	s, g, _ := conformanceServer(t)
	exact, err := oracle.ReachProbabilities(g, []graph.NodeID{4})
	if err != nil {
		t.Fatal(err)
	}
	const threshold = 0.3
	b := statcheck.Hoeffding(confEll).Union(g.NumNodes())
	rec, body := do(t, s, "/v1/reliability?sources=4&threshold=0.3&samples=20000")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := make(map[graph.NodeID]bool)
	for _, v := range bodyNodes(t, body, "nodes") {
		got[v] = true
	}
	for v := range exact {
		if statcheck.InMargin(exact[v], threshold, b) {
			continue
		}
		want := exact[v] >= threshold
		if got[graph.NodeID(v)] != want {
			t.Errorf("node %d membership %v, exact prob %v vs threshold %v says %v",
				v, got[graph.NodeID(v)], exact[v], threshold, want)
		}
	}
}

// TestConformanceServerSeeds: the /v1/seeds greedy max-cover answer honors
// the deterministic (1-1/e) guarantee against the exhaustive coverage
// optimum over the same sphere store it serves from.
func TestConformanceServerSeeds(t *testing.T) {
	s, g, spheres := conformanceServer(t)
	n := g.NumNodes()
	masks := make([]uint64, n)
	for v := range spheres {
		masks[v] = oracle.MaskOf(spheres[v].Set)
	}
	const k = 2
	best := 0
	for mask := uint64(0); mask < 1<<n; mask++ {
		pop, cover := 0, uint64(0)
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				pop++
				cover |= masks[v]
			}
		}
		if pop != k {
			continue
		}
		c := 0
		for m := cover; m != 0; m &= m - 1 {
			c++
		}
		if c > best {
			best = c
		}
	}
	rec, body := do(t, s, "/v1/seeds?k=2")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := bodyFloat(t, body, "objective")
	const oneMinusInvE = 1 - 0.36787944117144233
	if got < oneMinusInvE*float64(best)-1e-12 {
		t.Errorf("served objective %v < (1-1/e)*%d = %v", got, best, oneMinusInvE*float64(best))
	}
}

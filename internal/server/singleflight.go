package server

import (
	"context"
	"sync"

	"soi/internal/telemetry"
)

// flightGroup deduplicates identical in-flight queries: the first request
// for a key becomes the leader and computes; followers arriving before it
// finishes block on the leader's result instead of competing for admission
// slots. (Hand-rolled because the repo is dependency-free; the contract
// matches golang.org/x/sync/singleflight.Do.)
type flightGroup struct {
	mu     sync.Mutex
	m      map[string]*flight
	shared *telemetry.Counter
}

type flight struct {
	done chan struct{}
	ent  *cached
	err  error
}

func newFlightGroup(tel *telemetry.Registry) *flightGroup {
	return &flightGroup{
		m:      make(map[string]*flight),
		shared: tel.Counter("server.singleflight.shared"),
	}
}

// do runs fn once per key among concurrent callers. Followers wait for the
// leader's result but give up when their own ctx expires — a follower with a
// tight budget is not held hostage by a slow leader. The bool reports
// whether this caller was a follower sharing the leader's result.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*cached, error)) (*cached, bool, error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		g.shared.Inc()
		select {
		case <-f.done:
			return f.ent, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.ent, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.ent, false, f.err
}

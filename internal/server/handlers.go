package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"soi/internal/cascade"
	"soi/internal/checkpoint"
	"soi/internal/core"
	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/infmax"
	"soi/internal/reliability"
	"soi/internal/trace"
)

// splitPartial separates budget truncation (a degraded success) from real
// failures: (pe, nil) when err is a *checkpoint.PartialError, (nil, err)
// otherwise.
func splitPartial(err error) (*checkpoint.PartialError, error) {
	if err == nil {
		return nil, nil
	}
	var pe *checkpoint.PartialError
	if errors.As(err, &pe) {
		return pe, nil
	}
	return nil, err
}

func statusFor(pe *checkpoint.PartialError) int {
	if pe != nil {
		return http.StatusPartialContent
	}
	return http.StatusOK
}

// quarantinePartial annotates answers computed over a degraded index. The
// memory-mapped loader quarantines corrupt world blocks at fault-in time, so
// this must run after the compute it annotates: by then every world the query
// touched is either loaded or quarantined. With q of ℓ worlds quarantined the
// estimate is an average over the ℓ-q survivors, so the Hoeffding bound is
// re-derived at the live count (checkpoint.ErrorBound) and scaled to the
// estimate's units — exactly how budget truncation is surfaced, and the two
// compose by summing bounds (mergePartial). An index that has lost every
// world cannot answer at all: that is a retryable 503 (CodeDegraded) so the
// gateway fails over to a replica with a healthy copy.
//
// Note the cache interaction: 206 responses are never cached, so degraded
// answers always recompute; entries cached before a block went bad replay
// answers computed over strictly healthier data, which stays correct.
func (s *Server) quarantinePartial(scale float64) (partialInfo, error) {
	quar := s.x.QuarantinedWorlds()
	if quar == 0 {
		return partialInfo{}, nil
	}
	live := s.x.LiveWorlds()
	if live == 0 {
		return partialInfo{}, &apiError{
			status: http.StatusServiceUnavailable,
			code:   CodeDegraded,
			msg:    "index degraded: every world block is quarantined; repair the file with soifsck",
			// Retryable 503s carry Retry-After so the gateway's backoff
			// honoring applies before it fails over to a replica.
			retryAfter: time.Second,
		}
	}
	return partialInfo{
		Partial:           true,
		WorldsUsed:        live,
		WorldsQuarantined: quar,
		ErrorBound:        checkpoint.ErrorBound(live) * scale,
	}, nil
}

// queryEstimator parses the estimator parameter shared by /v1/spread,
// /v1/sphere, and /v1/seeds: "" and "dense" select the dense per-world
// estimators, "sketch" the loaded combined bottom-k sketch (a 409 conflict
// when none is loaded, matching the sphere-store contract).
func (s *Server) queryEstimator(req *http.Request) (string, error) {
	est := req.URL.Query().Get("estimator")
	switch est {
	case "", "dense":
		return "", nil
	case "sketch":
		if s.sketch == nil {
			return "", conflict("no sketch loaded; estimator=sketch requires soid -sketch")
		}
		return "sketch", nil
	default:
		return "", badRequest("bad estimator %q: want dense or sketch", est)
	}
}

// querySeed derives the sampling seed for a request from the server seed and
// the queried nodes, so distinct queries draw independent streams while the
// same query is reproducible (and therefore cacheable) across requests.
func (s *Server) querySeed(vs ...graph.NodeID) uint64 {
	h := checkpoint.NewHasher().Uint64(s.cfg.Seed)
	h.Nodes(vs)
	return h.Sum()
}

// handleSphere serves GET /v1/sphere/{node}: the node's typical cascade with
// an optional held-out stability estimate. source=store returns the
// precomputed sphere from the loaded store; source=compute derives it from
// the index under the request budget; source=auto (default) prefers the
// store.
func (s *Server) handleSphere(req *http.Request) (result, error) {
	v, err := s.pathNode(req)
	if err != nil {
		return result{}, err
	}
	est, err := s.queryEstimator(req)
	if err != nil {
		return result{}, err
	}
	if est == "sketch" {
		ssp := trace.Child(req.Context(), "sphere.sketch")
		size := s.sketch.EstimateSphereSize(v)
		ssp.End()
		s.mSketch.Inc()
		resp := sphereResponse{
			Node:          s.orig(v),
			Sphere:        []int64{}, // the sketch estimates magnitude, not membership
			Source:        "sketch",
			Estimator:     "sketch",
			EstimatedSize: size,
		}
		resp.ErrorBound = s.sketch.ErrorBound(size)
		return ok(resp), nil
	}
	source := req.URL.Query().Get("source")
	switch source {
	case "", "auto":
		if s.spheres != nil {
			source = "store"
		} else {
			source = "compute"
		}
	case "store":
		if s.spheres == nil {
			return result{}, conflict("no sphere store loaded; start soid with -spheres or use source=compute")
		}
	case "compute":
	default:
		return result{}, badRequest("bad source %q: want auto, store, or compute", source)
	}

	if source == "store" {
		r := &s.spheres[v]
		resp := sphereResponse{
			Node:       s.orig(v),
			Sphere:     s.origSlice(r.Set),
			Size:       r.Size(),
			SampleCost: r.SampleCost,
			Source:     "store",
		}
		if r.ExpectedCost >= 0 {
			stab := r.ExpectedCost
			resp.Stability = &stab
		}
		return ok(resp), nil
	}

	samples, err := queryInt(req, "samples", s.cfg.costSamples())
	if err != nil {
		return result{}, err
	}
	if samples < 0 {
		return result{}, badRequest("samples must be >= 0, got %d", samples)
	}

	csp := trace.Child(req.Context(), "sphere.compute")
	sc := s.scratch.Get().(*index.Scratch)
	r := core.ComputeWithScratch(s.x, v, core.Options{Telemetry: s.cfg.Telemetry}, sc)
	s.scratch.Put(sc)
	csp.End()
	qp, err := s.quarantinePartial(1) // sample cost is a [0,1] Jaccard average
	if err != nil {
		return result{}, err
	}

	resp := sphereResponse{
		Node:       s.orig(v),
		Sphere:     s.origSlice(r.Set),
		Size:       r.Size(),
		SampleCost: r.SampleCost,
		Source:     "computed",
	}
	if samples > 0 {
		ectx, esp := trace.StartChild(req.Context(), "stability.estimate",
			trace.Int("samples", int64(samples)))
		stab, achieved, err := core.EstimateCostBudget(ectx, s.g,
			[]graph.NodeID{v}, r.Set, samples, s.querySeed(v), s.cfg.Model,
			samplingBudget(ectx))
		esp.SetAttrs(trace.Int("achieved", int64(achieved)))
		esp.End()
		pe, err := splitPartial(err)
		if err != nil {
			return result{}, err
		}
		resp.Stability = &stab
		resp.StabilitySamples = achieved
		resp.partialInfo = mergePartial(partialOf(pe, 1), qp) // Jaccard distance: bound already in [0,1]
		return result{status: partialStatus(resp.partialInfo), v: resp}, nil
	}
	resp.partialInfo = qp
	return result{status: partialStatus(qp), v: resp}, nil
}

// handleStability serves GET /v1/stability?seeds=...: the typical cascade of
// a seed set together with its held-out stability ρ under the request
// budget.
func (s *Server) handleStability(req *http.Request) (result, error) {
	seeds, err := s.queryNodes(req, "seeds")
	if err != nil {
		return result{}, err
	}
	samples, err := queryInt(req, "samples", s.cfg.costSamples())
	if err != nil {
		return result{}, err
	}
	if samples < 1 {
		return result{}, badRequest("samples must be >= 1, got %d", samples)
	}

	csp := trace.Child(req.Context(), "sphere.compute")
	r := core.ComputeFromSet(s.x, seeds, core.Options{Telemetry: s.cfg.Telemetry})
	csp.End()
	qp, err := s.quarantinePartial(1)
	if err != nil {
		return result{}, err
	}
	ectx, esp := trace.StartChild(req.Context(), "stability.estimate",
		trace.Int("samples", int64(samples)))
	stab, achieved, err := core.EstimateCostBudget(ectx, s.g,
		seeds, r.Set, samples, s.querySeed(seeds...), s.cfg.Model,
		samplingBudget(ectx))
	esp.SetAttrs(trace.Int("achieved", int64(achieved)))
	esp.End()
	pe, err := splitPartial(err)
	if err != nil {
		return result{}, err
	}
	pi := mergePartial(partialOf(pe, 1), qp)
	return result{status: partialStatus(pi), v: stabilityResponse{
		Seeds:       s.origSlice(seeds),
		Set:         s.origSlice(r.Set),
		Size:        r.Size(),
		SampleCost:  r.SampleCost,
		Stability:   stab,
		Samples:     achieved,
		partialInfo: pi,
	}}, nil
}

// handleSeeds serves GET /v1/seeds?k=...: InfMax_TC greedy max-cover over
// the loaded sphere store. This endpoint has no sampling to degrade, so the
// budget (plus grace) acts as a hard timeout instead.
func (s *Server) handleSeeds(req *http.Request) (result, error) {
	est, err := s.queryEstimator(req)
	if err != nil {
		return result{}, err
	}
	k, err := queryInt(req, "k", 0)
	if err != nil {
		return result{}, err
	}
	if k < 1 || k > s.g.NumNodes() {
		return result{}, badRequest("k must be in [1, %d], got %d", s.g.NumNodes(), k)
	}
	if est == "sketch" {
		gsp := trace.Child(req.Context(), "seeds.sketch_greedy", trace.Int("k", int64(k)))
		sel, err := infmax.SelectSeedsSketch(s.sketch, k)
		gsp.End()
		if err != nil {
			return result{}, err
		}
		s.mSketch.Inc()
		obj := sel.Objective()
		return ok(seedsResponse{
			K:               k,
			Seeds:           s.origSlice(sel.Seeds),
			Gains:           sel.Gains,
			Objective:       obj, // expected-spread units, unlike the TC cover
			Coverage:        obj / float64(s.g.NumNodes()),
			LazyEvaluations: sel.LazyEvaluations,
			Estimator:       "sketch",
			ErrorBound:      s.sketch.ErrorBound(obj),
		}), nil
	}
	if s.tcSets == nil {
		return result{}, conflict("no sphere store loaded; /v1/seeds requires soid -spheres")
	}
	gctx, gsp := trace.StartChild(req.Context(), "seeds.greedy", trace.Int("k", int64(k)))
	sel, err := infmax.TC(gctx, s.g, s.tcSets, k,
		infmax.TCOptions{Telemetry: s.cfg.Telemetry})
	gsp.End()
	if err != nil {
		return result{}, err
	}
	return ok(seedsResponse{
		K:               k,
		Seeds:           s.origSlice(sel.Seeds),
		Gains:           sel.Gains,
		Objective:       sel.Objective(),
		Coverage:        sel.Objective() / float64(s.g.NumNodes()),
		LazyEvaluations: sel.LazyEvaluations,
	}), nil
}

// handleSpread serves GET /v1/spread?seeds=...: expected spread either over
// the loaded index's worlds (method=index, deterministic and fast) or by
// fresh Monte-Carlo simulation under the request budget (method=mc).
func (s *Server) handleSpread(req *http.Request) (result, error) {
	seeds, err := s.queryNodes(req, "seeds")
	if err != nil {
		return result{}, err
	}
	est, err := s.queryEstimator(req)
	if err != nil {
		return result{}, err
	}
	method := req.URL.Query().Get("method")
	if est == "sketch" {
		if method != "" && method != "index" {
			return result{}, badRequest("estimator=sketch answers over the index's worlds; method %q is not compatible", method)
		}
		ssp := trace.Child(req.Context(), "spread.sketch")
		spread := s.sketch.EstimateSpread(seeds)
		ssp.End()
		s.mSketch.Inc()
		resp := spreadResponse{
			Seeds:     s.origSlice(seeds),
			Spread:    spread,
			Method:    "index",
			Estimator: "sketch",
		}
		resp.ErrorBound = s.sketch.ErrorBound(spread)
		return ok(resp), nil
	}
	switch method {
	case "", "index":
		isp := trace.Child(req.Context(), "spread.index")
		sc := s.scratch.Get().(*index.Scratch)
		spread := cascade.SpreadFromIndex(s.x, seeds, sc)
		s.scratch.Put(sc)
		isp.End()
		// Spread is in node units, so the [0,1] Hoeffding bound scales by n.
		qp, err := s.quarantinePartial(float64(s.g.NumNodes()))
		if err != nil {
			return result{}, err
		}
		return result{status: partialStatus(qp), v: spreadResponse{
			Seeds:       s.origSlice(seeds),
			Spread:      spread,
			Method:      "index",
			partialInfo: qp,
		}}, nil
	case "mc":
		trials, err := queryInt(req, "trials", s.cfg.trials())
		if err != nil {
			return result{}, err
		}
		if trials < 1 {
			return result{}, badRequest("trials must be >= 1, got %d", trials)
		}
		// One worker per request: admission control arbitrates cores across
		// requests; a single query must not monopolize the process.
		mctx, msp := trace.StartChild(req.Context(), "spread.mc",
			trace.Int("trials", int64(trials)))
		spread, err := cascade.ExpectedSpreadResumable(mctx, s.g, seeds,
			trials, s.querySeed(seeds...), 1,
			checkpoint.Config{Budget: samplingBudget(mctx), Telemetry: s.cfg.Telemetry})
		msp.End()
		pe, err := splitPartial(err)
		if err != nil {
			return result{}, err
		}
		return result{status: statusFor(pe), v: spreadResponse{
			Seeds:  s.origSlice(seeds),
			Spread: spread,
			Method: "mc",
			Trials: trials,
			// The estimator's bound is normalized to [0,1]; spread is in
			// node units, so scale by n.
			partialInfo: partialOf(pe, float64(s.g.NumNodes())),
		}}, nil
	default:
		return result{}, badRequest("bad method %q: want index or mc", method)
	}
}

// handleReliability serves GET /v1/reliability?sources=...&threshold=...:
// the nodes reachable from the sources with probability at least threshold,
// estimated by sampling under the request budget.
func (s *Server) handleReliability(req *http.Request) (result, error) {
	sources, err := s.queryNodes(req, "sources")
	if err != nil {
		return result{}, err
	}
	threshold := 0.5
	if raw := req.URL.Query().Get("threshold"); raw != "" {
		threshold, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			return result{}, badRequest("bad threshold %q", raw)
		}
	}
	samples, err := queryInt(req, "samples", s.cfg.trials())
	if err != nil {
		return result{}, err
	}
	if samples < 1 {
		return result{}, badRequest("samples must be >= 1, got %d", samples)
	}

	rctx, rsp := trace.StartChild(req.Context(), "reliability.search",
		trace.Int("samples", int64(samples)))
	nodes, achieved, err := reliability.SearchBudget(rctx, s.g, sources,
		threshold, samples, s.querySeed(sources...), samplingBudget(rctx))
	rsp.SetAttrs(trace.Int("achieved", int64(achieved)))
	rsp.End()
	pe, err := splitPartial(err)
	if err != nil {
		return result{}, err
	}
	return result{status: statusFor(pe), v: reliabilityResponse{
		Sources:     s.origSlice(sources),
		Threshold:   threshold,
		Nodes:       s.origSlice(nodes),
		Count:       len(nodes),
		Samples:     achieved,
		partialInfo: partialOf(pe, 1),
	}}, nil
}

// handleModes serves GET /v1/modes/{node}?k=...: the k-mode cascade
// decomposition of a node with its takeoff probability.
func (s *Server) handleModes(req *http.Request) (result, error) {
	v, err := s.pathNode(req)
	if err != nil {
		return result{}, err
	}
	k, err := queryInt(req, "k", 2)
	if err != nil {
		return result{}, err
	}
	if k < 1 {
		return result{}, badRequest("k must be >= 1, got %d", k)
	}
	msp := trace.Child(req.Context(), "modes.analyze", trace.Int("k", int64(k)))
	modes := core.AnalyzeModes(s.x, v, k)
	msp.End()
	qp, err := s.quarantinePartial(1) // mode probabilities are [0,1] world fractions
	if err != nil {
		return result{}, err
	}
	out := make([]modeJSON, len(modes))
	for i, m := range modes {
		out[i] = modeJSON{
			Median:      s.origSlice(m.Median),
			Size:        len(m.Median),
			Probability: m.Probability,
			Cost:        m.Cost,
		}
	}
	return result{status: partialStatus(qp), v: modesResponse{
		Node:               s.orig(v),
		K:                  k,
		Modes:              out,
		TakeoffProbability: core.TakeoffProbability(modes),
		partialInfo:        qp,
	}}, nil
}

// handleInfo serves GET /v1/info: the loaded artifacts and their
// fingerprints, so clients can validate they are talking to the dataset they
// expect.
func (s *Server) handleInfo(*http.Request) (result, error) {
	return ok(infoResponse{
		Nodes:             s.g.NumNodes(),
		Edges:             s.g.NumEdges(),
		Worlds:            s.x.NumWorlds(),
		WorldsQuarantined: s.x.QuarantinedWorlds(),
		Mmap:              s.x.Lazy(),
		GraphFingerprint:  strconv.FormatUint(s.graphFP, 16),
		IndexFingerprint:  strconv.FormatUint(s.indexFP, 16),
		SpheresLoaded:     s.spheres != nil,
		SketchLoaded:      s.sketch != nil,
		CacheEntries:      s.cache.len(),
		UptimeSeconds:     int64(time.Since(s.started).Seconds()),
	}), nil
}

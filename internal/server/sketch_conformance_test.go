package server

import (
	"fmt"
	"math"
	"testing"

	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/oracle"
	"soi/internal/sketch"
	"soi/internal/statcheck"
	"soi/internal/telemetry"
)

// sketchConfBound is the tolerance for one served sketch estimate of a
// quantity with exact value `exact`: Cohen bottom-k relative error at the
// fixture's k (delta split across m sibling assertions, scaled additive)
// plus Hoeffding world sampling on a [0, n]-valued mean.
func sketchConfBound(exact float64, m, n int) statcheck.Bound {
	sk := statcheck.BottomKDelta(confSketchK, statcheck.DefaultDelta/float64(m)).Scale(exact)
	return sk.Plus(statcheck.Hoeffding(confEll).Union(m).Scale(float64(n)))
}

// TestConformanceSketchServerSpread: /v1/spread?estimator=sketch end to
// end — HTTP parsing, estimator dispatch, and the reported error bound —
// against the exact oracle. The served bound (delta=0.05) plus world slack
// must bracket the truth, and the response must label itself.
func TestConformanceSketchServerSpread(t *testing.T) {
	s, g, _ := conformanceServer(t)
	n := g.NumNodes()
	seedSets := []string{"4", "0", "4,3", "0,1,2"}
	exactOf := func(spec []graph.NodeID) float64 {
		exact, err := oracle.ExpectedSpread(g, spec)
		if err != nil {
			t.Fatal(err)
		}
		return exact
	}
	sets := [][]graph.NodeID{{4}, {0}, {4, 3}, {0, 1, 2}}
	for i, qs := range seedSets {
		exact := exactOf(sets[i])
		rec, body := do(t, s, "/v1/spread?seeds="+qs+"&estimator=sketch")
		if rec.Code != 200 {
			t.Fatalf("seeds=%s: status %d: %s", qs, rec.Code, rec.Body.String())
		}
		if est := body["estimator"]; est != "sketch" {
			t.Errorf("seeds=%s: estimator %v, want sketch", qs, est)
		}
		got := bodyFloat(t, body, "spread")
		statcheck.Close(t, fmt.Sprintf("served sketch spread %s", qs), got, exact,
			sketchConfBound(exact, len(seedSets), n))

		served := bodyFloat(t, body, "error_bound")
		if served <= 0 {
			t.Errorf("seeds=%s: served error_bound %v, want > 0", qs, served)
		}
		worldSlack := statcheck.Hoeffding(confEll).Union(len(seedSets)).Scale(float64(n)).Eps
		if diff := math.Abs(got - exact); diff > served+worldSlack {
			t.Errorf("seeds=%s: |%.4f-%.4f| = %.4f outside served bound %.4f (+world %.4f)",
				qs, got, exact, diff, served, worldSlack)
		}
	}
}

// TestConformanceSketchServerSphere: /v1/sphere/{node}?estimator=sketch
// returns the estimated expected sphere magnitude, which must match the
// oracle's exact singleton spread within the derived tolerance.
func TestConformanceSketchServerSphere(t *testing.T) {
	s, g, _ := conformanceServer(t)
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		exact, err := oracle.ExpectedSpread(g, []graph.NodeID{graph.NodeID(v)})
		if err != nil {
			t.Fatal(err)
		}
		rec, body := do(t, s, fmt.Sprintf("/v1/sphere/%d?estimator=sketch", v))
		if rec.Code != 200 {
			t.Fatalf("node %d: status %d: %s", v, rec.Code, rec.Body.String())
		}
		if src := body["source"]; src != "sketch" {
			t.Errorf("node %d: source %v, want sketch", v, src)
		}
		statcheck.Close(t, fmt.Sprintf("served sketch sphere size %d", v),
			bodyFloat(t, body, "estimated_size"), exact, sketchConfBound(exact, n, n))
	}
}

// TestConformanceSketchServerSeeds: the full SKIM path over HTTP — the
// /v1/seeds?estimator=sketch selection's *true* spread (per the exact
// oracle) honors the (1-1/e)·opt floor minus the derived uniform slack
// from world sampling and sketch compression.
func TestConformanceSketchServerSeeds(t *testing.T) {
	s, g, _ := conformanceServer(t)
	n := g.NumNodes()
	o, err := oracle.NewSpreadOracle(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2} {
		_, opt, err := o.OptimalSeedSet(k)
		if err != nil {
			t.Fatal(err)
		}
		rec, body := do(t, s, fmt.Sprintf("/v1/seeds?k=%d&estimator=sketch", k))
		if rec.Code != 200 {
			t.Fatalf("k=%d: status %d: %s", k, rec.Code, rec.Body.String())
		}
		if est := body["estimator"]; est != "sketch" {
			t.Errorf("k=%d: estimator %v, want sketch", k, est)
		}
		if eb := bodyFloat(t, body, "error_bound"); eb <= 0 {
			t.Errorf("k=%d: error_bound %v, want > 0", k, eb)
		}
		seeds := bodyNodes(t, body, "seeds")
		if len(seeds) != k {
			t.Fatalf("k=%d: got %d seeds", k, len(seeds))
		}
		trueSpread, err := o.Spread(seeds)
		if err != nil {
			t.Fatal(err)
		}
		world := statcheck.Hoeffding(confEll).Union(1 << n).Scale(2 * float64(n))
		compress := statcheck.BottomKDelta(confSketchK, statcheck.DefaultDelta/float64(uint(1)<<n)).
			Scale(opt).Scale(2 * float64(k))
		statcheck.AtLeast(t, fmt.Sprintf("served sketch seed quality k=%d", k),
			trueSpread, (1-1/math.E)*opt, world.Plus(compress))
	}
}

// TestSketchServerRequiresSketch: estimator=sketch without a loaded sketch
// must answer 409 conflict (permanent, not retryable) on all three
// endpoints, and unknown estimator values must 400.
func TestSketchServerRequiresSketch(t *testing.T) {
	s := newTestServer(t, nil)
	for _, path := range []string{
		"/v1/spread?seeds=0&estimator=sketch",
		"/v1/sphere/0?estimator=sketch",
		"/v1/seeds?k=1&estimator=sketch",
	} {
		rec, _ := do(t, s, path)
		if rec.Code != 409 {
			t.Errorf("%s: status %d, want 409", path, rec.Code)
		}
	}
	rec, _ := do(t, s, "/v1/spread?seeds=0&estimator=exact")
	if rec.Code != 400 {
		t.Errorf("unknown estimator: status %d, want 400", rec.Code)
	}
}

// TestNewRejectsForeignSketch: a sketch keyed to a different index must be
// refused at startup — serving it would silently estimate the wrong
// dataset's spreads.
func TestNewRejectsForeignSketch(t *testing.T) {
	f := sharedFixture(t)
	other, err := index.Build(f.g, index.Options{Samples: 60, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := sketch.Build(other, sketch.Options{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Graph:     f.g,
		Index:     f.x,
		Sketch:    foreign,
		Telemetry: telemetry.New(),
	})
	if err == nil {
		t.Fatal("foreign sketch accepted")
	}

	matching, err := sketch.Build(f.x, sketch.Options{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, func(c *Config) { c.Sketch = matching })
	rec, body := do(t, s, "/readyz")
	if rec.Code != 200 {
		t.Fatalf("readyz status %d", rec.Code)
	}
	if body["sketch_loaded"] != true {
		t.Errorf("readyz sketch_loaded = %v, want true", body["sketch_loaded"])
	}
	rec, body = do(t, s, "/v1/info")
	if rec.Code != 200 || body["sketch_loaded"] != true {
		t.Errorf("info status %d sketch_loaded %v", rec.Code, body["sketch_loaded"])
	}
}

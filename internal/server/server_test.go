package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"soi/internal/core"
	"soi/internal/fault"
	"soi/internal/graph"
	"soi/internal/index"
	"soi/internal/telemetry"
)

// testGraph builds a ~40-node graph with a mix of strong chains and weak
// shortcuts, large enough that sphere queries do real work.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	const n = 40
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 0.8)
	}
	for i := 0; i < n-5; i += 3 {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+5), 0.3)
	}
	for i := 0; i < n-7; i += 7 {
		b.AddEdge(graph.NodeID(i+7), graph.NodeID(i), 0.2)
	}
	return b.MustBuild()
}

type fixture struct {
	g       *graph.Graph
	x       *index.Index
	spheres []core.Result
}

var (
	fixOnce sync.Once
	fix     fixture
)

// sharedFixture builds the graph/index/spheres triple once per test binary;
// the artifacts are immutable, so tests and benchmarks can share them.
func sharedFixture(t testing.TB) fixture {
	t.Helper()
	fixOnce.Do(func() {
		g := testGraph(t)
		x, err := index.Build(g, index.Options{Samples: 120, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		spheres := core.ComputeAll(x, core.Options{CostSamples: 30, CostSeed: 9})
		fix = fixture{g: g, x: x, spheres: spheres}
	})
	return fix
}

func newTestServer(t testing.TB, mutate func(*Config)) *Server {
	t.Helper()
	f := sharedFixture(t)
	cfg := Config{
		Graph:       f.g,
		Index:       f.x,
		Spheres:     f.spheres,
		Telemetry:   telemetry.New(),
		MaxInflight: 8,
		MaxQueue:    256,
		CostSamples: 20,
		Trials:      50,
		Seed:        11,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do performs a request against the handler directly and decodes the JSON
// body into a generic map.
func do(t testing.TB, s *Server, url string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, rec.Body.String(), err)
	}
	return rec, body
}

func TestSphereFromStore(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := do(t, s, "/v1/sphere/3")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["source"] != "store" {
		t.Fatalf("source %v, want store", body["source"])
	}
	if body["node"] != float64(3) {
		t.Fatalf("node %v, want 3", body["node"])
	}
	members, ok := body["sphere"].([]any)
	if !ok || len(members) == 0 {
		t.Fatalf("sphere %v, want non-empty list", body["sphere"])
	}
	found := false
	for _, m := range members {
		if m == float64(3) {
			found = true
		}
	}
	if !found {
		t.Fatalf("sphere %v does not contain its source 3", members)
	}
}

func TestSphereComputedMatchesStore(t *testing.T) {
	s := newTestServer(t, nil)
	_, stored := do(t, s, "/v1/sphere/5?source=store")
	rec, computed := do(t, s, "/v1/sphere/5?source=compute&samples=0")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if computed["source"] != "computed" {
		t.Fatalf("source %v, want computed", computed["source"])
	}
	if fmt.Sprint(stored["sphere"]) != fmt.Sprint(computed["sphere"]) {
		t.Fatalf("computed sphere %v != stored %v", computed["sphere"], stored["sphere"])
	}
}

func TestSphereComputeStability(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := do(t, s, "/v1/sphere/2?source=compute&samples=25")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	stab, ok := body["stability"].(float64)
	if !ok {
		t.Fatalf("stability missing: %v", body)
	}
	if stab < 0 || stab > 1 {
		t.Fatalf("stability %v outside [0,1]", stab)
	}
	if body["stability_samples"] != float64(25) {
		t.Fatalf("stability_samples %v, want 25", body["stability_samples"])
	}
}

func TestNodeErrors(t *testing.T) {
	s := newTestServer(t, nil)
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/v1/sphere/99999", 404},
		{"/v1/sphere/junk", 400},
		{"/v1/sphere/3?source=bogus", 400},
		{"/v1/sphere/3?budget=nonsense", 400},
		{"/v1/stability?seeds=1,junk", 400},
		{"/v1/stability?samples=5", 400}, // missing seeds
		{"/v1/seeds?k=0", 400},
		{"/v1/spread?seeds=1&method=bogus", 400},
		{"/v1/reliability?sources=1&threshold=abc", 400},
		{"/v1/modes/99999", 404},
	} {
		rec, body := do(t, s, tc.url)
		if rec.Code != tc.code {
			t.Errorf("GET %s: status %d, want %d (%s)", tc.url, rec.Code, tc.code, rec.Body.String())
		}
		code, msg := envelope(t, body)
		if msg == "" {
			t.Errorf("GET %s: no error message", tc.url)
		}
		want := CodeBadRequest
		if tc.code == 404 {
			want = CodeNotFound
		}
		if code != want {
			t.Errorf("GET %s: error code %q, want %q", tc.url, code, want)
		}
	}
}

// envelope unpacks the standard {"error":{"code","message","retry_after_ms"}}
// body, failing the test on any other shape.
func envelope(t testing.TB, body map[string]any) (code, msg string) {
	t.Helper()
	obj, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf(`error body %v, want an {"error":{...}} envelope`, body)
	}
	code, _ = obj["code"].(string)
	msg, _ = obj["message"].(string)
	if code == "" {
		t.Fatalf("error envelope %v has no code", obj)
	}
	return code, msg
}

func TestSeedsEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := do(t, s, "/v1/seeds?k=3")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	seeds := body["seeds"].([]any)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3", len(seeds))
	}
	if body["objective"].(float64) <= 0 {
		t.Fatalf("objective %v, want > 0", body["objective"])
	}
	cov := body["coverage"].(float64)
	if cov <= 0 || cov > 1 {
		t.Fatalf("coverage %v outside (0,1]", cov)
	}
}

func TestSeedsWithoutStore(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Spheres = nil })
	rec, _ := do(t, s, "/v1/seeds?k=3")
	if rec.Code != http.StatusConflict {
		t.Fatalf("status %d, want 409", rec.Code)
	}
}

func TestSpreadIndexVsMC(t *testing.T) {
	s := newTestServer(t, nil)
	rec, viaIndex := do(t, s, "/v1/spread?seeds=0,10")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	rec, viaMC := do(t, s, "/v1/spread?seeds=0,10&method=mc&trials=400")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	a, b := viaIndex["spread"].(float64), viaMC["spread"].(float64)
	if a < 2 || b < 2 {
		t.Fatalf("spreads %v / %v, want >= |seeds|", a, b)
	}
	// Both estimate the same expectation; they agree loosely.
	if diff := a - b; diff < -6 || diff > 6 {
		t.Fatalf("index spread %v vs mc spread %v: too far apart", a, b)
	}
}

func TestReliabilityEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := do(t, s, "/v1/reliability?sources=0&threshold=0.7&samples=200")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	nodes := body["nodes"].([]any)
	if len(nodes) == 0 {
		t.Fatal("no nodes above threshold; the source itself is always reliable")
	}
	if body["samples"] != float64(200) {
		t.Fatalf("samples %v, want 200", body["samples"])
	}
}

func TestModesEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := do(t, s, "/v1/modes/0?k=2")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	modes := body["modes"].([]any)
	if len(modes) == 0 || len(modes) > 2 {
		t.Fatalf("got %d modes, want 1..2", len(modes))
	}
	tp := body["takeoff_probability"].(float64)
	if tp < 0 || tp > 1 {
		t.Fatalf("takeoff probability %v outside [0,1]", tp)
	}
}

func TestInfoEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := do(t, s, "/v1/info")
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["nodes"] != float64(40) {
		t.Fatalf("nodes %v, want 40", body["nodes"])
	}
	if body["worlds"] != float64(120) {
		t.Fatalf("worlds %v, want 120", body["worlds"])
	}
	wantFP := fmt.Sprintf("%x", s.IndexFingerprint())
	if body["index_fingerprint"] != wantFP {
		t.Fatalf("index fingerprint %v, want %s", body["index_fingerprint"], wantFP)
	}
	if body["spheres_loaded"] != true {
		t.Fatalf("spheres_loaded %v, want true", body["spheres_loaded"])
	}
}

func TestCacheHit(t *testing.T) {
	s := newTestServer(t, nil)
	rec1, _ := do(t, s, "/v1/sphere/7")
	if got := rec1.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache %q, want miss", got)
	}
	rec2, _ := do(t, s, "/v1/sphere/7")
	if got := rec2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache %q, want hit", got)
	}
	if rec1.Body.String() != rec2.Body.String() {
		t.Fatalf("cache replayed a different body")
	}
	// Same query, different param order, same cache entry.
	_, _ = do(t, s, "/v1/stability?seeds=1,2&samples=10")
	rec3, _ := do(t, s, "/v1/stability?samples=10&seeds=1,2")
	if got := rec3.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("canonicalized query X-Cache %q, want hit", got)
	}
}

func TestPartial206OnTinyBudget(t *testing.T) {
	s := newTestServer(t, nil)
	// 200k trials cannot finish in 1ms; the Budget gate admits the first
	// trial and then truncates, so the response degrades to 206 instead of
	// failing.
	url := "/v1/spread?seeds=0&method=mc&trials=200000&budget=1ms"
	rec, body := do(t, s, url)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body.String())
	}
	if body["partial"] != true {
		t.Fatalf("partial %v, want true", body["partial"])
	}
	achieved := body["achieved"].(float64)
	if achieved < 1 || achieved >= 200000 {
		t.Fatalf("achieved %v, want in [1, 200000)", achieved)
	}
	if body["requested"] != float64(200000) {
		t.Fatalf("requested %v, want 200000", body["requested"])
	}
	bound := body["error_bound"].(float64)
	if bound <= 0 {
		t.Fatalf("error_bound %v, want > 0", bound)
	}
	if body["spread"].(float64) < 1 {
		t.Fatalf("partial spread %v, want >= 1", body["spread"])
	}
	// Partial responses must not be cached: a patient client would get
	// replayed degraded data.
	rec2, _ := do(t, s, url)
	if got := rec2.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("partial response was cached (X-Cache %q)", got)
	}
}

func TestStabilityPartial206(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := do(t, s, "/v1/stability?seeds=0&samples=500000&budget=1ms")
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body.String())
	}
	if body["achieved"].(float64) < 1 {
		t.Fatalf("achieved %v, want >= 1", body["achieved"])
	}
	bound := body["error_bound"].(float64)
	if bound <= 0 || bound > 1 {
		t.Fatalf("error_bound %v, want in (0,1]", bound)
	}
}

func TestOverload429(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxInflight = 1
		c.MaxQueue = -1 // no queue: second concurrent request is shed
		c.CacheSize = -1
	})
	fault.SetActive(true)
	defer fault.SetActive(false)
	if err := fault.Enable(fault.ServerCompute, fault.Failpoint{
		Kind: fault.KindDelay, Delay: 500 * time.Millisecond, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}

	slow := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sphere/1?source=compute&samples=0", nil))
		slow <- rec.Code
	}()
	// Give the slow request time to occupy the only compute slot.
	time.Sleep(100 * time.Millisecond)
	rec, body := do(t, s, "/v1/sphere/2?source=compute&samples=0")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	code, msg := envelope(t, body)
	if code != CodeOverloaded {
		t.Fatalf("error code %q, want %q", code, CodeOverloaded)
	}
	if !strings.Contains(msg, "overload") {
		t.Fatalf("error %v, want overload mention", msg)
	}
	if !RetryableCode(code) {
		t.Fatal("overloaded must be a retryable code")
	}
	if code := <-slow; code != 200 {
		t.Fatalf("slow request status %d, want 200", code)
	}
}

func TestSingleflightSharesResult(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxInflight = 1
		c.MaxQueue = -1
	})
	fault.SetActive(true)
	defer fault.SetActive(false)
	// Delay every compute: identical concurrent requests must collapse onto
	// one leader rather than each needing (and fighting over) the one slot.
	if err := fault.Enable(fault.ServerCompute, fault.Failpoint{
		Kind: fault.KindDelay, Delay: 200 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	codes := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func() {
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sphere/9?source=compute&samples=0", nil))
			codes <- rec.Code
		}()
	}
	for i := 0; i < clients; i++ {
		if code := <-codes; code != 200 {
			t.Fatalf("client got %d, want 200 (singleflight should absorb concurrency)", code)
		}
	}
	if hits := fault.Hits(fault.ServerCompute); hits >= clients {
		t.Fatalf("%d computes for %d identical requests, want fewer", hits, clients)
	}
}

// TestLoadSmoke64Clients is the acceptance load test: 64 concurrent clients
// hammering /v1/sphere with zero errors.
func TestLoadSmoke64Clients(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 64
	const perClient = 4
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				node := (c*perClient + r) % 40
				resp, err := http.Get(fmt.Sprintf("%s/v1/sphere/%d", ts.URL, node))
				if err != nil {
					errc <- err
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, b)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fault.SetActive(true)
	defer fault.SetActive(false)
	if err := fault.Enable(fault.ServerCompute, fault.Failpoint{
		Kind: fault.KindDelay, Delay: 300 * time.Millisecond, Times: 1,
	}); err != nil {
		t.Fatal(err)
	}

	slow := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/v1/sphere/4?source=compute&samples=0")
		if err != nil {
			slow <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slow <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // the slow request is now in-flight

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	if code := <-slow; code != 200 {
		t.Fatalf("in-flight request during drain got %d, want 200", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The listener is closed; new connections must fail.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
	// And the handler itself (were it still mounted elsewhere) refuses work
	// with a retryable "draining" code.
	rec, body := do(t, s, "/v1/sphere/1")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drained handler status %d, want 503", rec.Code)
	}
	if code, _ := envelope(t, body); code != CodeDraining {
		t.Fatalf("drained handler code %q, want %q", code, CodeDraining)
	}
	// Liveness stays green while draining — restarting a draining process
	// would abort the drain; readiness is what flips.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("drained healthz status %d, want 200 (liveness)", rec.Code)
	}
	rec, body = do(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drained readyz status %d, want 503", rec.Code)
	}
	if body["ready"] != false || body["reason"] != "draining" {
		t.Fatalf("drained readyz body %v, want ready=false reason=draining", body)
	}
}

func TestReadyzSurfacesFingerprints(t *testing.T) {
	s := newTestServer(t, nil)
	rec, body := do(t, s, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz status %d: %s", rec.Code, rec.Body.String())
	}
	if body["ready"] != true {
		t.Fatalf("ready %v, want true", body["ready"])
	}
	if body["index_fingerprint"] != fmt.Sprintf("%016x", s.IndexFingerprint()) {
		t.Fatalf("index fingerprint %v, want %016x", body["index_fingerprint"], s.IndexFingerprint())
	}
	if body["graph_fingerprint"] != fmt.Sprintf("%016x", s.GraphFingerprint()) {
		t.Fatalf("graph fingerprint %v, want %016x", body["graph_fingerprint"], s.GraphFingerprint())
	}
}

// TestGateLoadingToReady covers the startup window: the Gate answers
// liveness 200 / readiness 503 "loading" before artifacts load, then serves
// the real handler after Ready.
func TestGateLoadingToReady(t *testing.T) {
	g := NewGate()
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("loading healthz status %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("loading readyz status %d, want 503", rec.Code)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil || ready.Ready || ready.Reason != "loading" {
		t.Fatalf("loading readyz body %s (err %v), want ready=false reason=loading", rec.Body.String(), err)
	}
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sphere/1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("loading query status %d, want 503", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != CodeLoading {
		t.Fatalf("loading query body %s (err %v), want code %q", rec.Body.String(), err, CodeLoading)
	}
	if !RetryableCode(env.Error.Code) {
		t.Fatal("loading must be a retryable code")
	}

	s := newTestServer(t, nil)
	g.Ready(s.Handler())
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("ready readyz status %d, want 200", rec.Code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz status %d", rec.Code)
	}
	do(t, s, "/v1/sphere/1")
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "soi_server_requests_total") {
		t.Fatalf("metrics output missing server counters:\n%s", rec.Body.String())
	}
}

func TestNewRejectsMismatchedArtifacts(t *testing.T) {
	f := sharedFixture(t)
	// Sphere store of the wrong cardinality.
	_, err := New(Config{Graph: f.g, Index: f.x, Spheres: f.spheres[:5]})
	if err == nil || !strings.Contains(err.Error(), "sphere store") {
		t.Fatalf("err %v, want sphere store mismatch", err)
	}
	// Index built for a different graph.
	other := graph.NewBuilder(3)
	other.AddEdge(0, 1, 0.5)
	og := other.MustBuild()
	ox, berr := index.Build(og, index.Options{Samples: 10, Seed: 1})
	if berr != nil {
		t.Fatal(berr)
	}
	_, err = New(Config{Graph: f.g, Index: ox})
	if err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Fatalf("err %v, want graph/index mismatch", err)
	}
	// Missing requireds.
	if _, err := New(Config{Index: f.x}); err == nil {
		t.Fatal("New without Graph succeeded")
	}
	if _, err := New(Config{Graph: f.g}); err == nil {
		t.Fatal("New without Index succeeded")
	}
}

func TestBudgetCap(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBudget = 50 * time.Millisecond })
	// A huge requested budget is capped, so this still degrades to 206
	// rather than sampling for an hour. The trial count is large enough
	// that the capped 50ms budget always truncates, but small enough that
	// the sampler's uninterruptible per-trial RNG setup stays well inside
	// the budget grace even under -race with the full suite in parallel —
	// past that, the hard deadline turns the 206 into a 503.
	rec, _ := do(t, s, "/v1/spread?seeds=0&method=mc&trials=1000000&budget=1h")
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206 under capped budget: %s", rec.Code, rec.Body.String())
	}
}

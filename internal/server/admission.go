package server

import (
	"context"
	"errors"

	"soi/internal/telemetry"
)

// errOverload is mapped to 429 + Retry-After by the request middleware.
var errOverload = errors.New("server: overloaded, admission queue full")

// admission bounds concurrent compute with a slot semaphore plus a bounded
// wait queue. A request acquires a compute slot immediately if one is free;
// otherwise it takes a queue slot and waits. When both are exhausted the
// request is shed with errOverload — the server prefers fast rejection over
// unbounded queueing (tail latency is a product feature here).
type admission struct {
	slots    chan struct{} // compute slots; len == in-flight compute
	waiters  chan struct{} // queue slots; len == queued requests
	inflight *telemetry.Gauge
	queued   *telemetry.Gauge
}

func newAdmission(maxInflight, maxQueue int, tel *telemetry.Registry) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		waiters:  make(chan struct{}, maxQueue),
		inflight: tel.Gauge("server.inflight"),
		queued:   tel.Gauge("server.queued"),
	}
}

// acquire obtains a compute slot, queueing if allowed. It returns
// errOverload when the queue is full and ctx.Err() when the caller's budget
// expires while queued. Every nil return must be paired with release().
//
// Cancellation accounting: a waiter whose ctx dies releases its queue slot
// and decrements the queue-depth gauge itself (the deferred block), and a
// waiter that wins a compute slot in the same instant its ctx fires gives
// the slot straight back — a dead client must never occupy compute.
func (a *admission) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	select {
	case a.waiters <- struct{}{}:
	default:
		return errOverload
	}
	a.queued.Add(1)
	defer func() {
		<-a.waiters
		a.queued.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		if err := ctx.Err(); err != nil {
			// The select raced a cancellation and picked the slot send; the
			// request is already dead, so undo the acquisition rather than
			// charging a compute slot to a client that left.
			a.release()
			return err
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	<-a.slots
	a.inflight.Add(-1)
}

package server

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"soi/internal/telemetry"
)

// TestAdmissionCancelWhileQueued is the regression test for queue-slot
// accounting on cancellation: waiters whose contexts die while queued must
// decrement the queue-depth gauge, free their queue slots, and leave no
// goroutines behind; compute slots must remain fully usable afterwards.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	tel := telemetry.New()
	a := newAdmission(1, 4, tel)
	queued := tel.Gauge("server.queued")
	inflight := tel.Gauge("server.inflight")

	before := runtime.NumGoroutine()

	// Occupy the only compute slot.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Queue four waiters, then cancel them all.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- a.acquire(ctx)
		}()
	}
	// Wait until all four hold queue slots.
	for deadline := time.Now().Add(5 * time.Second); queued.Value() != 4; {
		if time.Now().After(deadline) {
			t.Fatalf("queued gauge %d, want 4", queued.Value())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != context.Canceled {
			t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
		}
	}
	if got := queued.Value(); got != 0 {
		t.Fatalf("queue-depth gauge %d after cancellation, want 0", got)
	}
	if got := inflight.Value(); got != 1 {
		t.Fatalf("inflight gauge %d, want 1 (only the original holder)", got)
	}

	// The queue must be fully reusable: fill it again without overload.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var wg2 sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			_ = a.acquire(ctx2)
		}()
	}
	for deadline := time.Now().Add(5 * time.Second); queued.Value() != 4; {
		if time.Now().After(deadline) {
			t.Fatalf("queue not reusable: gauge %d, want 4 (slots leaked?)", queued.Value())
		}
		time.Sleep(time.Millisecond)
	}
	// A fifth waiter finds the queue genuinely full — accounting is exact.
	if err := a.acquire(context.Background()); err != errOverload {
		t.Fatalf("fifth waiter got %v, want errOverload", err)
	}
	cancel2()
	wg2.Wait()

	// Release the compute slot; a fresh acquire must get it immediately —
	// cancellation leaked no compute capacity.
	a.release()
	fast, fastCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer fastCancel()
	if err := a.acquire(fast); err != nil {
		t.Fatalf("acquire after cancellations: %v (compute slot leaked?)", err)
	}
	a.release()
	if got := inflight.Value(); got != 0 {
		t.Fatalf("inflight gauge %d at end, want 0", got)
	}

	// Goroutine-leak guard: all waiter goroutines exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines: before=%d after=%d — waiters leaked", before, n)
	}
}

// TestAdmissionDeadClientNeverComputes covers the race where a queued waiter
// is granted a compute slot in the same instant its context is canceled: the
// slot must be returned, not charged to the dead client.
func TestAdmissionDeadClientNeverComputes(t *testing.T) {
	tel := telemetry.New()
	a := newAdmission(1, 1, tel)

	// Pre-canceled context on the fast path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.acquire(ctx); err != context.Canceled {
		t.Fatalf("pre-canceled acquire returned %v, want context.Canceled", err)
	}
	if got := tel.Gauge("server.inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge %d after dead-client acquire, want 0", got)
	}
	// The slot is still available to a live client.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.release()
}

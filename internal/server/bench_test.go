package server

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"soi/internal/trace"
)

// BenchmarkServerSphereQuery measures the serving pipeline on /v1/sphere:
// "cold" clears the result cache before every request (full compute +
// marshal), "cached" replays the same query (cache lookup + write). The
// cached path is the daemon's raison d'être and must be an order of
// magnitude faster than cold.
func BenchmarkServerSphereQuery(b *testing.B) {
	s := newTestServer(b, nil)

	query := func() int {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sphere/13?source=compute&samples=20", nil))
		return rec.Code
	}
	if code := query(); code != 200 {
		b.Fatalf("warmup status %d", code)
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.cache.clear()
			if code := query(); code != 200 {
				b.Fatalf("status %d", code)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		query() // ensure the entry is present
		for i := 0; i < b.N; i++ {
			if code := query(); code != 200 {
				b.Fatalf("status %d", code)
			}
		}
	})
}

// BenchmarkServerSphereQueryTraced is BenchmarkServerSphereQuery with
// tracing enabled at the default sample rate: the traced-vs-untraced delta
// is the serving cost of tracing (target: <2% on the cached path, where
// spans are the only extra work).
func BenchmarkServerSphereQueryTraced(b *testing.B) {
	s := newTestServer(b, func(c *Config) {
		c.Tracer = trace.New(trace.Options{Service: "soid"})
	})

	query := func() int {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sphere/13?source=compute&samples=20", nil))
		return rec.Code
	}
	if code := query(); code != 200 {
		b.Fatalf("warmup status %d", code)
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.cache.clear()
			if code := query(); code != 200 {
				b.Fatalf("status %d", code)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		query() // ensure the entry is present
		for i := 0; i < b.N; i++ {
			if code := query(); code != 200 {
				b.Fatalf("status %d", code)
			}
		}
	})
}

// BenchmarkServerSeedsQuery measures the heavier /v1/seeds greedy selection
// through the full pipeline, cold vs cached.
func BenchmarkServerSeedsQuery(b *testing.B) {
	s := newTestServer(b, nil)
	url := fmt.Sprintf("/v1/seeds?k=%d", 5)
	query := func() int {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec.Code
	}
	if code := query(); code != 200 {
		b.Fatalf("warmup status %d", code)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.cache.clear()
			if code := query(); code != 200 {
				b.Fatalf("status %d", code)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		query()
		for i := 0; i < b.N; i++ {
			if code := query(); code != 200 {
				b.Fatalf("status %d", code)
			}
		}
	})
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Gate is the daemon's front door during startup: it binds the listen
// address immediately — before the graph, index, and sphere store are loaded
// — and answers liveness (200) and readiness (503 "loading") until Ready
// swaps in the real handler. Routers probing /readyz therefore see a
// restarting shard as alive-but-not-ready instead of connection-refused, and
// scripts waiting on an address file can start polling during the load.
type Gate struct {
	handler atomic.Value // http.Handler
	srv     *http.Server
	done    chan struct{}
}

// NewGate returns a Gate serving the loading stub.
func NewGate() *Gate {
	g := &Gate{done: make(chan struct{})}
	stub := http.NewServeMux()
	stub.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	stub.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ReadyResponse{Ready: false, Reason: "loading"})
	})
	stub.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		WriteError(w, http.StatusServiceUnavailable, CodeLoading,
			"daemon is still loading its artifacts", time.Second)
	})
	g.handler.Store(http.Handler(stub))
	return g
}

// Ready swaps the loading stub for the real handler. Safe to call while
// requests are in flight; subsequent requests see h.
func (g *Gate) Ready(h http.Handler) { g.handler.Store(h) }

// ServeHTTP dispatches to the current handler.
func (g *Gate) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	g.handler.Load().(http.Handler).ServeHTTP(w, req)
}

// Start binds addr (":0" for ephemeral) and serves until Shutdown, returning
// the resolved listen address.
func (g *Gate) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	g.srv = &http.Server{Handler: g, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		defer close(g.done)
		_ = g.srv.Serve(ln) // ErrServerClosed on Shutdown is the normal path
	}()
	return ln.Addr().String(), nil
}

// Shutdown stops accepting connections and waits (bounded by ctx) for
// in-flight requests. The swapped-in Server's own drain flag should be
// flipped first so new requests are refused while old ones finish.
func (g *Gate) Shutdown(ctx context.Context) error {
	if g.srv == nil {
		return nil
	}
	err := g.srv.Shutdown(ctx)
	<-g.done
	return err
}

package server

import (
	"container/list"
	"sync"

	"soi/internal/telemetry"
)

// cached is one marshaled response: everything needed to replay it to a
// later client without recomputing or re-encoding. partial mirrors the
// response body's degradation annotation for the request log and trace
// events without re-parsing the marshaled bytes.
type cached struct {
	key     string
	status  int
	body    []byte
	partial partialInfo
}

// lruCache is a size-bounded (entry-count) LRU of marshaled responses.
// Entries are immutable after insertion, so a hit can hand the byte slice to
// the response writer without copying.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *cached
	items map[string]*list.Element

	hits    *telemetry.Counter
	misses  *telemetry.Counter
	entries *telemetry.Gauge
}

func newLRUCache(max int, tel *telemetry.Registry) *lruCache {
	return &lruCache{
		max:     max,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		hits:    tel.Counter("server.cache.hits"),
		misses:  tel.Counter("server.cache.misses"),
		entries: tel.Gauge("server.cache.entries"),
	}
}

func (c *lruCache) get(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cached), true
}

func (c *lruCache) put(ent *cached) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[ent.key]; ok {
		el.Value = ent
		c.ll.MoveToFront(el)
		return
	}
	c.items[ent.key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cached).key)
	}
	c.entries.Set(int64(c.ll.Len()))
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// clear empties the cache (benchmarks measuring the cold path).
func (c *lruCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.entries.Set(0)
}

// Package rng provides small, fast, deterministic random number generators
// used throughout the library.
//
// Reproducibility is a first-class requirement: every experiment in the paper
// is a Monte-Carlo estimate, and regression tests must be able to pin exact
// outputs. The package therefore exposes explicit-state generators rather
// than the global math/rand source, and supports cheap splitting so that
// parallel workers (one per sampled possible world, one per node, ...) each
// get an independent stream derived from a single master seed.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny mixing generator, used for seeding and splitting.
//   - PCG32: the PCG-XSH-RR 64/32 generator, used for all sampling. It has a
//     2^64 period per stream and 2^63 independent streams, more than enough
//     for the workloads here, and is several times faster than math/rand's
//     default source for the Float64/Intn mix these algorithms need.
package rng

import "math/bits"

// SplitMix64 is the mixing generator from Steele, Lea & Flood (OOPSLA 2014).
// Its zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a high-quality 64-bit
// hash used to derive child seeds from (seed, index) pairs without any
// visible correlation between the children.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// PCG32 implements the PCG-XSH-RR 64/32 generator (O'Neill 2014).
type PCG32 struct {
	state uint64
	inc   uint64 // always odd
}

// New returns a PCG32 seeded deterministically from seed, using stream 0.
func New(seed uint64) *PCG32 {
	return NewStream(seed, 0)
}

// NewStream returns a PCG32 on an independent stream. Generators created
// with the same seed but different stream values produce uncorrelated
// sequences; this is how parallel workers obtain private generators.
func NewStream(seed, stream uint64) *PCG32 {
	p := &PCG32{inc: (Mix64(stream)<<1 | 1)}
	p.state = 0
	p.next()
	p.state += Mix64(seed)
	p.next()
	return p
}

// Split derives a child generator from the parent's seed material and an
// index. Calling Split(i) for distinct i yields independent generators, and
// does not advance the parent, so the assignment of streams to work items is
// stable regardless of scheduling order.
func (p *PCG32) Split(i uint64) *PCG32 {
	return NewStream(Mix64(p.state^Mix64(i)), p.inc>>1^i)
}

func (p *PCG32) next() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint32 returns a uniformly distributed 32-bit value.
func (p *PCG32) Uint32() uint32 { return p.next() }

// Uint64 returns a uniformly distributed 64-bit value.
func (p *PCG32) Uint64() uint64 {
	return uint64(p.next())<<32 | uint64(p.next())
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (p *PCG32) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability prob. Probabilities outside [0,1]
// are clamped: prob <= 0 is always false, prob >= 1 always true.
func (p *PCG32) Bernoulli(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return p.Float64() < prob
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded rejection method.
func (p *PCG32) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	if n <= 1<<31 {
		return int(p.uint32n(uint32(n)))
	}
	// Rare large-range case: rejection sample on 64 bits.
	bound := uint64(n)
	mask := ^uint64(0)
	if b := bits.Len64(bound - 1); b < 64 {
		mask = 1<<uint(b) - 1
	}
	for {
		v := p.Uint64() & mask
		if v < bound {
			return int(v)
		}
	}
}

// uint32n returns a uniform value in [0, n) for n > 0.
func (p *PCG32) uint32n(n uint32) uint32 {
	// Lemire's multiply-shift with rejection of the biased region.
	x := p.next()
	m := uint64(x) * uint64(n)
	l := uint32(m)
	if l < n {
		thresh := -n % n
		for l < thresh {
			x = p.next()
			m = uint64(x) * uint64(n)
			l = uint32(m)
		}
	}
	return uint32(m >> 32)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (p *PCG32) Perm(n int) []int {
	out := make([]int, n)
	for i := 1; i < n; i++ {
		j := p.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
	return out
}

// Shuffle pseudo-randomizes the order of the first n elements using swap.
func (p *PCG32) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with rate 1, derived by
// inversion. Useful for skipping geometric gaps when sampling sparse edges.
func (p *PCG32) Exp() float64 {
	// -log(1-u) with u in [0,1); guard u == 0 exactly.
	u := p.Float64()
	return -log1p(-u)
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(prob) sequence, i.e. a sample from Geometric(prob) on {0,1,2,...}.
// prob must be in (0, 1].
func (p *PCG32) Geometric(prob float64) int {
	if prob >= 1 {
		return 0
	}
	if prob <= 0 {
		panic("rng: Geometric called with prob <= 0")
	}
	// Inversion: floor(log(u) / log(1-p)).
	u := p.Float64()
	for u == 0 {
		u = p.Float64()
	}
	g := int(logf(u) / log1p(-prob))
	if g < 0 {
		g = 0
	}
	return g
}

// The two math functions below are small wrappers so that the hot paths in
// this package avoid importing math at every call site; they are defined in
// terms of the standard library in rng_math.go.

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("step %d: %d != %d", i, x, y)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Regression pin: first outputs for seed 1234567. These values freeze
	// the stream so that any accidental change to the constants or mixing
	// steps is caught (every sampled experiment depends on this stream).
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ED017FB08FC85, 0x2C73F08458540FA5, 0x883EBCE5A3F27C77,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("value %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestPCGDeterministicAcrossInstances(t *testing.T) {
	a := New(99)
	b := New(99)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint32(), b.Uint32(); x != y {
			t.Fatalf("step %d: %d != %d", i, x, y)
		}
	}
}

func TestPCGStreamsDiffer(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("streams 1 and 2 agree on %d/1000 outputs; expected ~0", same)
	}
}

func TestSplitIndependentOfOrder(t *testing.T) {
	p := New(5)
	c3 := p.Split(3)
	c1 := p.Split(1)
	q := New(5)
	d1 := q.Split(1)
	d3 := q.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint32() != d1.Uint32() {
			t.Fatal("Split(1) depends on split order")
		}
		if c3.Uint32() != d3.Uint32() {
			t.Fatal("Split(3) depends on split order")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(1)
	for i := 0; i < 100000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	p := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	p := New(4)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[p.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d: count %d, want ~%.0f", v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulli(t *testing.T) {
	p := New(5)
	if p.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !p.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if p.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(6)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		perm := p.Perm(n)
		if len(perm) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(perm))
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, perm)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	p := New(7)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	p.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: %v", s)
	}
}

func TestGeometricMean(t *testing.T) {
	p := New(8)
	const prob, trials = 0.25, 100000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(p.Geometric(prob))
	}
	mean := sum / trials
	want := (1 - prob) / prob // mean of Geometric on {0,1,...}
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", prob, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	p := New(9)
	for i := 0; i < 100; i++ {
		if g := p.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d", g)
		}
	}
}

func TestExpPositive(t *testing.T) {
	p := New(10)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		e := p.Exp()
		if e < 0 {
			t.Fatalf("Exp() negative: %v", e)
		}
		sum += e
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean = %v, want ~1", mean)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	p := New(11)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := p.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed)
		v := p.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPCGUint32(b *testing.B) {
	p := New(1)
	for i := 0; i < b.N; i++ {
		_ = p.Uint32()
	}
}

func BenchmarkPCGFloat64(b *testing.B) {
	p := New(1)
	for i := 0; i < b.N; i++ {
		_ = p.Float64()
	}
}

func BenchmarkPCGBernoulli(b *testing.B) {
	p := New(1)
	for i := 0; i < b.N; i++ {
		_ = p.Bernoulli(0.1)
	}
}

package rng

import "math"

func log1p(x float64) float64 { return math.Log1p(x) }

func logf(x float64) float64 { return math.Log(x) }

package cliutil

import (
	"errors"
	"testing"
	"time"

	"soi/internal/checkpoint"
)

func TestPartial(t *testing.T) {
	if Partial("tool", nil) {
		t.Fatal("nil error reported as partial")
	}
	if Partial("tool", errors.New("boom")) {
		t.Fatal("ordinary error reported as partial")
	}
	pe := &checkpoint.PartialError{Achieved: 3, Requested: 10, Bound: 0.5}
	if !Partial("tool", pe) {
		t.Fatal("PartialError not recognized")
	}
	// Wrapped partials count too (the resumable paths wrap freely).
	if !Partial("tool", errors.Join(errors.New("ctx"), pe)) {
		t.Fatal("wrapped PartialError not recognized")
	}
}

func TestResumeConfig(t *testing.T) {
	cfg := ResumeConfig("tool", "run.ckpt", time.Minute)
	if cfg.Path != "run.ckpt" {
		t.Fatalf("Path = %q", cfg.Path)
	}
	if cfg.Budget.Deadline.IsZero() || time.Until(cfg.Budget.Deadline) > time.Minute {
		t.Fatalf("Deadline = %v", cfg.Budget.Deadline)
	}
	if cfg.OnResume == nil {
		t.Fatal("OnResume not set")
	}
	cfg.OnResume(1, 2) // writes a notice to stderr; must not panic

	if cfg := ResumeConfig("tool", "", 0); cfg.Path != "" || !cfg.Budget.Deadline.IsZero() {
		t.Fatalf("zero flags produced %+v", cfg)
	}
}

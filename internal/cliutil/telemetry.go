package cliutil

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"soi/internal/atomicfile"
	"soi/internal/checkpoint"
	"soi/internal/graph"
	"soi/internal/telemetry"
)

// RunTelemetry is a command's telemetry lifecycle: an optional metrics
// registry (nil when neither -debug-addr nor -stats-json was given — all
// instrumentation downstream then no-ops), an optional debug HTTP server,
// and an exactly-once final report flush that runs on every exit path,
// including Fail's os.Exit shortcuts.
type RunTelemetry struct {
	// Tool is the command name, used in stderr notices.
	Tool string
	// Registry is the metrics registry handed to the compute layers; nil
	// when telemetry is disabled.
	Registry *telemetry.Registry

	statsPath string
	server    *telemetry.DebugServer
	flushOnce sync.Once
}

// StartTelemetry builds the telemetry lifecycle from the -debug-addr and
// -stats-json flags. With both empty it returns a disabled lifecycle whose
// Registry is nil, so the per-event overhead everywhere downstream is a
// single nil check. The debug server (Prometheus /metrics, expvar, pprof)
// starts immediately; its resolved address is announced on stderr.
func StartTelemetry(tool, debugAddr, statsPath string) (*RunTelemetry, error) {
	t := &RunTelemetry{Tool: tool, statsPath: statsPath}
	if debugAddr == "" && statsPath == "" {
		return t, nil
	}
	t.Registry = telemetry.New()
	t.Registry.SetTool(tool)
	telemetry.PublishExpvar("soi", t.Registry)
	if debugAddr != "" {
		srv, err := telemetry.Serve(debugAddr, t.Registry)
		if err != nil {
			return nil, fmt.Errorf("%s: debug server: %w", tool, err)
		}
		t.server = srv
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s (/metrics, /debug/vars, /debug/pprof/)\n", tool, srv.Addr)
	}
	return t, nil
}

// Flush writes the final report exactly once: the JSON report to the
// -stats-json path (atomically), the human-readable table to stderr, and
// shuts down the debug server. Safe to call multiple times and on a
// disabled (Registry == nil) lifecycle. Flush failures are reported on
// stderr but never change the command's exit code — telemetry must not turn
// a successful run into a failed one.
func (t *RunTelemetry) Flush() {
	t.flushOnce.Do(func() {
		if t.Registry == nil {
			return
		}
		rep := t.Registry.Report()
		if t.statsPath != "" {
			err := atomicfile.WriteFile(t.statsPath, func(w io.Writer) error {
				b, err := rep.JSON()
				if err != nil {
					return err
				}
				_, err = w.Write(b)
				return err
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing stats to %s: %v\n", t.Tool, t.statsPath, err)
			}
		}
		rep.WriteTable(os.Stderr)
		if t.server != nil {
			if err := t.server.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: closing debug server: %v\n", t.Tool, err)
			}
		}
	})
}

// Finish flushes telemetry and then exits through Fail. Use it instead of
// Fail on every error path once telemetry has started, so interrupted
// (exit 130) and failed runs still leave a report behind.
func (t *RunTelemetry) Finish(err error) {
	t.Flush()
	Fail(t.Tool, err)
}

// ResumeConfig is the package-level ResumeConfig with the lifecycle's
// registry attached, so resumable compute paths driven by the returned
// config feed the same metrics as direct calls.
func (t *RunTelemetry) ResumeConfig(path string, deadline time.Duration) checkpoint.Config {
	cfg := ResumeConfig(t.Tool, path, deadline)
	cfg.Telemetry = t.Registry
	return cfg
}

// GraphHash records the loaded graph's content hash in the run report, so a
// report can be matched to its exact input. No-op when telemetry is
// disabled.
func (t *RunTelemetry) GraphHash(g *graph.Graph) {
	if t.Registry == nil || g == nil {
		return
	}
	t.Registry.SetGraphHash(checkpoint.NewHasher().Graph(g).Sum())
}

// Package cliutil holds the exit-code and reporting conventions shared by
// the four binaries:
//
//   - exit 0: success, including acceptable deadline-degraded (partial)
//     results — the partial notice goes to stderr, never stdout, so piped
//     output stays machine-readable;
//   - exit 1: real errors (bad flags are 2, from package flag);
//   - exit 130: SIGINT/SIGTERM cancellation, the shell convention for
//     128+SIGINT, so scripts and supervisors can tell an interrupted run
//     from a failed one.
package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"soi/internal/checkpoint"
)

// Config aliases checkpoint.Config so commands can hold one without
// importing the checkpoint package directly.
type Config = checkpoint.Config

// Exit codes (see the package comment).
const (
	ExitOK       = 0
	ExitError    = 1
	ExitCanceled = 130
)

// Fail prints err on stderr with the tool prefix and exits with the
// appropriate code: 130 for signal cancellation, 1 otherwise.
func Fail(tool string, err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "%s: canceled\n", tool)
		os.Exit(ExitCanceled)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitError)
}

// Partial inspects a …Resumable result: for a deadline-degraded result it
// prints the notice on stderr and reports handled=true (the caller keeps the
// partial result and continues); for nil it reports false; anything else is
// a real error the caller passes to Fail.
func Partial(tool string, err error) (handled bool) {
	var pe *checkpoint.PartialError
	if errors.As(err, &pe) {
		fmt.Fprintf(os.Stderr, "%s: partial result: deadline reached after %d/%d units (±%.4f error bound); checkpoint kept for resume\n",
			tool, pe.Achieved, pe.Requested, pe.Bound)
		return true
	}
	return false
}

// RetryStale runs one resumable phase and handles unusable checkpoints: if
// fn fails because the checkpoint at path is stale (the graph, parameters,
// or seed changed since it was written) or corrupt, the file is discarded
// with a loud stderr notice and fn runs once more from scratch. The library
// deliberately refuses to resume such files; "warn, discard, recompute" is
// the right response for a command-line tool, silent resumption is not.
func RetryStale[T any](tool, path string, fn func() (T, error)) (T, error) {
	out, err := fn()
	if path == "" || (!errors.Is(err, checkpoint.ErrStale) && !errors.Is(err, checkpoint.ErrCorrupt)) {
		return out, err
	}
	fmt.Fprintf(os.Stderr, "%s: discarding unusable checkpoint %s (%v); starting fresh\n", tool, path, err)
	if rerr := checkpoint.Remove(path); rerr != nil {
		return out, rerr
	}
	return fn()
}

// ResumeConfig assembles the checkpoint/budget configuration from the
// -checkpoint and -deadline flags. path is the checkpoint file ("" disables
// checkpointing); deadline is a duration from now (0 disables the budget).
// Resume progress is reported on stderr.
func ResumeConfig(tool, path string, deadline time.Duration) checkpoint.Config {
	cfg := checkpoint.Config{Path: path}
	if deadline > 0 {
		cfg.Budget = checkpoint.Budget{Deadline: time.Now().Add(deadline)}
	}
	cfg.OnResume = func(done, total int) {
		fmt.Fprintf(os.Stderr, "%s: resumed from checkpoint %s: %d/%d units already complete\n", tool, path, done, total)
	}
	return cfg
}

package cliutil

import (
	"flag"
	"time"

	"soi/internal/telemetry"
	"soi/internal/trace"
)

// TraceFlags is the serving daemons' shared tracing configuration (soid and
// soigw register identical flags, so operators learn one spelling).
type TraceFlags struct {
	Ring       int
	Sample     float64
	Slow       time.Duration
	RequestLog string
}

// Register installs the tracing flags on fs.
func (f *TraceFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Ring, "trace-ring", 512,
		"retained-trace ring size (/debug/traces); 0 disables tracing entirely")
	fs.Float64Var(&f.Sample, "trace-sample", 0.01,
		"probability an unremarkable trace is retained (errors/206s/slow are always kept); negative keeps only remarkable traces")
	fs.DurationVar(&f.Slow, "trace-slow", 500*time.Millisecond,
		"requests at least this slow are always retained")
	fs.StringVar(&f.RequestLog, "request-log", "",
		"append one JSON line per request to this file")
}

// Tracer builds the tracer, or nil when tracing is disabled (-trace-ring 0).
func (f *TraceFlags) Tracer(service string, tel *telemetry.Registry) *trace.Tracer {
	if f.Ring <= 0 {
		return nil
	}
	return trace.New(trace.Options{
		Service:       service,
		RingSize:      f.Ring,
		SampleRate:    f.Sample,
		SlowThreshold: f.Slow,
		Telemetry:     tel,
	})
}

// OpenRequestLog opens the -request-log file, or returns nil (logging
// disabled) when the flag was not given.
func (f *TraceFlags) OpenRequestLog() (*trace.RequestLog, error) {
	if f.RequestLog == "" {
		return nil, nil
	}
	return trace.OpenRequestLog(f.RequestLog)
}

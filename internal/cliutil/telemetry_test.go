package cliutil

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"soi/internal/telemetry"
)

func TestStartTelemetryDisabled(t *testing.T) {
	rt, err := StartTelemetry("tool", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if rt.Registry != nil {
		t.Fatal("disabled lifecycle has a registry")
	}
	rt.Flush() // must be a safe no-op
	rt.GraphHash(nil)
	if cfg := rt.ResumeConfig("", 0); cfg.Telemetry != nil {
		t.Fatal("disabled lifecycle leaked a registry into the config")
	}
}

func TestFlushWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	rt, err := StartTelemetry("tool", "", path)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Registry == nil {
		t.Fatal("stats-json alone should enable telemetry")
	}
	rt.Registry.Counter("x.count").Add(7)
	rt.Flush()
	rt.Flush() // idempotent

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetry.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("stats file is not valid JSON: %v", err)
	}
	if rep.Schema != telemetry.ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.RunInfo.Tool != "tool" {
		t.Fatalf("tool = %q", rep.RunInfo.Tool)
	}
	if rep.Counters["x.count"] != 7 {
		t.Fatalf("counter = %d", rep.Counters["x.count"])
	}
}

func TestResumeConfigCarriesRegistry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	rt, err := StartTelemetry("tool", "", path)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Flush()
	cfg := rt.ResumeConfig("run.ckpt", time.Minute)
	if cfg.Telemetry != rt.Registry {
		t.Fatal("config does not carry the run registry")
	}
	if cfg.Path != "run.ckpt" || cfg.Budget.Deadline.IsZero() {
		t.Fatalf("base config not assembled: %+v", cfg)
	}
}

func TestStartTelemetryDebugServer(t *testing.T) {
	rt, err := StartTelemetry("tool", "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	if rt.Registry == nil {
		t.Fatal("debug-addr alone should enable telemetry")
	}
	rt.Flush() // closes the server
}

// Package trace is the distributed-tracing companion to internal/telemetry:
// a zero-dependency layer of timed spans with typed attributes and events,
// organized into per-request traces, carried in-process via context.Context
// and across processes via the W3C traceparent header. soigw opens a root
// span per gateway request plus one child span per shard leg; each soid
// continues the trace on its side of the wire, so the combined span tree
// shows a scatter-gather request end to end — which shard timed out, which
// leg was hedged, where the latency went.
//
// The design follows the telemetry package's one invariant: disabled tracing
// must cost (almost) nothing. A nil *Tracer hands out nil *Spans, every Span
// method is nil-safe, and instrumented code never branches on "tracing
// enabled?" — the disabled cost is a nil check per event
// (BenchmarkSpanEventDisabled).
//
// Completed traces are retained tail-based in a fixed-size ring buffer (see
// ring.go): errors, partial (206) answers, and slow requests are always
// kept; the unremarkable rest is sampled probabilistically. The ring is
// served as JSON (schema soi.trace/v1) on /debug/traces and
// /debug/traces/{id} (see http.go).
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"soi/internal/telemetry"
)

// RequestIDHeader is echoed on every soid/soigw response carrying the
// request's trace id, so a client can quote the id back to an operator (or
// straight to /debug/traces/{id}) when reporting a slow or degraded answer.
const RequestIDHeader = "X-SOI-Request-ID"

// Options assembles a Tracer. The zero value selects serving-sensible
// defaults everywhere.
type Options struct {
	// Service names this process in trace output ("soid", "soigw").
	Service string
	// RingSize bounds the retained-trace ring buffer in traces; 0 selects
	// 512.
	RingSize int
	// SampleRate is the probability that an unremarkable trace (no error, no
	// 206, under the latency threshold) is retained anyway; 0 selects 0.01,
	// negative disables sampling (only remarkable traces are kept).
	SampleRate float64
	// SlowThreshold marks a trace "slow" (always retained) when its local
	// root span runs at least this long; 0 selects 500ms.
	SlowThreshold time.Duration
	// Telemetry receives trace.started / trace.retained / trace.dropped
	// counters; nil disables instrumentation.
	Telemetry *telemetry.Registry
}

func (o Options) ringSize() int {
	if o.RingSize <= 0 {
		return 512
	}
	return o.RingSize
}

func (o Options) sampleRate() float64 {
	if o.SampleRate == 0 {
		return 0.01
	}
	if o.SampleRate < 0 {
		return 0
	}
	if o.SampleRate > 1 {
		return 1
	}
	return o.SampleRate
}

func (o Options) slowThreshold() time.Duration {
	if o.SlowThreshold <= 0 {
		return 500 * time.Millisecond
	}
	return o.SlowThreshold
}

// Tracer owns a process's traces: it mints ids, tracks traces with open
// spans, and retains completed traces in the ring. A nil *Tracer is a valid
// "tracing disabled" tracer whose StartRequest/StartSpan return nil spans.
type Tracer struct {
	opts Options
	ring *ring

	// idBase seeds span/trace id generation; idCtr makes every id unique
	// within the process. Ids are splitmix64 outputs, so they are uniform
	// enough for the deterministic sampling decision.
	idBase uint64
	idCtr  atomic.Uint64

	mu     sync.Mutex
	active map[TraceID]*Trace

	mStarted  *telemetry.Counter
	mRetained *telemetry.Counter
	mDropped  *telemetry.Counter
}

// New returns an enabled tracer.
func New(opts Options) *Tracer {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// crypto/rand failing is effectively impossible; fall back to the
		// clock so ids are still distinct across processes.
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	tel := opts.Telemetry
	return &Tracer{
		opts:      opts,
		ring:      newRing(opts.ringSize()),
		idBase:    binary.LittleEndian.Uint64(seed[:]),
		active:    make(map[TraceID]*Trace),
		mStarted:  tel.Counter("trace.started"),
		mRetained: tel.Counter("trace.retained"),
		mDropped:  tel.Counter("trace.dropped"),
	}
}

// Service returns the configured service name ("" on a nil tracer).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.opts.Service
}

// splitmix64 is the id mixer: uniform, fast, and stateless given a distinct
// input per call.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) nextID() uint64 {
	id := splitmix64(t.idBase + t.idCtr.Add(1))
	if id == 0 {
		id = 1 // all-zero ids are "absent" in the W3C encoding
	}
	return id
}

func (t *Tracer) newTraceID() TraceID {
	return TraceID{Hi: t.nextID(), Lo: t.nextID()}
}

// Trace is one request's tree of spans as seen by this process. In a
// sharded deployment each process holds its own fragment of the distributed
// trace (same TraceID, spans linked by parent ids across the wire).
type Trace struct {
	id      TraceID
	idStr   string // id.String(), rendered once — read per request for headers and exemplars
	tracer  *Tracer
	start   time.Time
	sampled bool // traceparent sampled flag (propagated downstream)

	mu    sync.Mutex
	spans []*Span // in start order; spans[0] is the local root
	// retainReason is set at commit time ("error", "partial", "slow",
	// "sampled"); empty while the trace is active.
	retainReason string
}

// ID returns the trace id.
func (tr *Trace) ID() TraceID { return tr.id }

// localRoot is the first span this process opened for the trace; its End
// commits the trace to the ring.
func (tr *Trace) localRoot() *Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) == 0 {
		return nil
	}
	return tr.spans[0]
}

func (tr *Trace) addSpan(s *Span) {
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
}

// newTrace registers a fresh active trace.
func (t *Tracer) newTrace(id TraceID, sampled bool) *Trace {
	tr := &Trace{id: id, idStr: id.String(), tracer: t, start: time.Now(), sampled: sampled}
	t.mu.Lock()
	// Backstop against unbounded growth if spans leak without End: drop
	// tracking (not correctness) beyond a generous cap. Request spans are
	// ended by deferred calls in the HTTP wrappers, so this never triggers
	// in practice.
	if len(t.active) < 65536 {
		t.active[id] = tr
	}
	t.mu.Unlock()
	t.mStarted.Inc()
	return tr
}

// adopt returns the active trace for id, or creates one continuing a remote
// parent. Sharing a Tracer between a gateway and its shards (tests, single
// process deployments) therefore assembles the full tree in one Trace.
func (t *Tracer) adopt(id TraceID, sampled bool) *Trace {
	t.mu.Lock()
	tr, ok := t.active[id]
	t.mu.Unlock()
	if ok {
		return tr
	}
	return t.newTrace(id, sampled)
}

// commit retires a trace whose local root ended: the tail-based retention
// decision runs and the trace enters the ring (or not).
func (t *Tracer) commit(tr *Trace) {
	t.mu.Lock()
	delete(t.active, tr.id)
	t.mu.Unlock()
	reason := t.retention(tr)
	if reason == "" {
		t.mDropped.Inc()
		return
	}
	tr.mu.Lock()
	tr.retainReason = reason
	tr.mu.Unlock()
	t.mRetained.Inc()
	t.ring.add(tr)
}

// retention is the tail-based keep/drop decision: errors, partial (206)
// answers, and slow roots are always kept; the rest is sampled
// deterministically from the trace id.
func (t *Tracer) retention(tr *Trace) string {
	// Read under the trace lock (no copy): commit runs once per request and
	// only touches per-span atomics.
	tr.mu.Lock()
	defer tr.mu.Unlock()
	spans := tr.spans
	partial := false
	for _, s := range spans {
		if s.errMsg.Load() != nil {
			return "error"
		}
		switch st := int(s.httpStatus.Load()); {
		case st >= 400:
			return "error"
		case st == http.StatusPartialContent:
			partial = true
		}
	}
	if partial {
		return "partial"
	}
	if len(spans) > 0 && spans[0].ended.Load() &&
		time.Duration(spans[0].durNS.Load()) >= t.opts.slowThreshold() {
		return "slow"
	}
	// Deterministic coin flip from the trace id: the same trace is kept or
	// dropped by every observer.
	if rate := t.opts.sampleRate(); rate > 0 {
		if float64(splitmix64(tr.id.Lo)>>11)/float64(1<<53) < rate {
			return "sampled"
		}
	}
	return ""
}

// --- span creation --------------------------------------------------------

type ctxKey struct{}

// ContextWithSpan returns ctx carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

func (t *Tracer) newSpan(tr *Trace, parent SpanID, name string, attrs []Attr) *Span {
	s := &Span{
		trace:  tr,
		id:     SpanID(t.nextID()),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	tr.addSpan(s)
	return s
}

// StartSpan opens a span: a child of the span in ctx when one is present, a
// fresh root trace otherwise. Returns ctx unchanged and a nil span on a nil
// tracer.
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent := FromContext(ctx); parent != nil {
		c := t.newSpan(parent.trace, parent.id, name, attrs)
		return ContextWithSpan(ctx, c), c
	}
	tr := t.newTrace(t.newTraceID(), true)
	s := t.newSpan(tr, 0, name, attrs)
	return ContextWithSpan(ctx, s), s
}

// StartRequest opens the server span for an incoming HTTP request: when the
// request carries a valid traceparent header the trace is continued (the new
// span's parent is the caller's span), otherwise a fresh trace starts.
func (t *Tracer) StartRequest(req *http.Request, name string, attrs ...Attr) (context.Context, *Span) {
	ctx := req.Context()
	if t == nil {
		return ctx, nil
	}
	link, ok := ParseTraceparent(req.Header.Get(TraceparentHeader))
	if !ok {
		return t.StartSpan(ctx, name, attrs...)
	}
	tr := t.adopt(link.TraceID, link.Sampled)
	s := t.newSpan(tr, link.SpanID, name, attrs)
	return ContextWithSpan(ctx, s), s
}

// StartChild opens a child of the span carried by ctx. With no span in ctx
// (tracing disabled, or an uninstrumented caller) it returns ctx and nil —
// the disabled path costs one context lookup.
func StartChild(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	c := Child(ctx, name, attrs...)
	if c == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, c), c
}

// Child opens a child of the span carried by ctx without deriving a new
// context — for leaf operations that never propagate the span further
// (cache lookups, admission waits). Saves a context allocation per span.
func Child(ctx context.Context, name string, attrs ...Attr) *Span {
	parent := FromContext(ctx)
	if parent == nil {
		return nil
	}
	return parent.trace.tracer.newSpan(parent.trace, parent.id, name, attrs)
}

// --- spans ----------------------------------------------------------------

// Attr is one typed key/value attribute on a span or event. Values are
// restricted to the constructors' types (string, int64, float64, bool) so
// JSON output is stable.
type Attr struct {
	Key   string
	Value any
}

// String returns a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float returns a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Event is a timestamped point-in-time annotation on a span (a retry fired,
// a breaker opened, a merge widened a bound).
type Event struct {
	Name  string
	At    time.Time
	Attrs []Attr
}

// Span is one timed operation inside a trace. All methods are safe for
// concurrent use and nil-safe: a nil *Span discards everything.
type Span struct {
	trace  *Trace
	id     SpanID
	parent SpanID // 0 = local root with no parent
	name   string
	start  time.Time

	ended      atomic.Bool
	durNS      atomic.Int64
	httpStatus atomic.Int32
	errMsg     atomic.Pointer[string]

	mu     sync.Mutex
	attrs  []Attr
	events []Event
}

// TraceID returns the id of the span's trace (zero on a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace.id
}

// ID returns the span id (zero on a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Event records a timestamped event on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	ev := Event{Name: name, At: time.Now(), Attrs: attrs}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// SetHTTPStatus records the HTTP status the span's operation produced; 206
// and >=400 statuses feed the tail-based retention decision.
func (s *Span) SetHTTPStatus(code int) {
	if s == nil {
		return
	}
	s.httpStatus.Store(int32(code))
}

// SetError marks the span failed. Errored traces are always retained.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.errMsg.Store(&msg)
}

// End closes the span, freezing its duration. Idempotent: only the first
// call wins. Ending a trace's local root commits the trace to the ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	if !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.durNS.Store(int64(time.Since(s.start)))
	tr := s.trace
	if tr.localRoot() == s {
		tr.tracer.commit(tr)
	}
}

// Traceparent renders the span as an outgoing W3C traceparent value, so the
// next hop continues this trace with this span as parent. Empty on nil.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.trace.id, s.id, s.trace.sampled)
}

// Inject sets the traceparent header for an outgoing request when ctx
// carries a span; a no-op otherwise.
func Inject(ctx context.Context, h http.Header) {
	if s := FromContext(ctx); s != nil {
		h.Set(TraceparentHeader, s.Traceparent())
	}
}

// RequestID returns the trace id string for the span ("" on nil): the value
// echoed in the X-SOI-Request-ID response header.
func (s *Span) RequestID() string {
	if s == nil {
		return ""
	}
	return s.trace.idStr
}

package trace

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// RequestRecord is one line of the structured request log: everything an
// operator needs to triage a single request without grepping server output —
// the trace id to pull the full tree, the endpoint and status, and the
// accuracy actually delivered (achieved/requested samples, error bound,
// shard fan-out).
type RequestRecord struct {
	Time       time.Time `json:"time"`
	Service    string    `json:"service"`
	TraceID    string    `json:"trace_id,omitempty"`
	Endpoint   string    `json:"endpoint"`
	Path       string    `json:"path"`
	Status     int       `json:"status"`
	DurationMS float64   `json:"duration_ms"`
	Cache      string    `json:"cache,omitempty"` // hit | miss | shared
	ErrorCode  string    `json:"error_code,omitempty"`

	// Degradation accounting (206s and quarantine-scaled answers).
	Partial    bool    `json:"partial,omitempty"`
	Achieved   int     `json:"achieved,omitempty"`
	Requested  int     `json:"requested,omitempty"`
	ErrorBound float64 `json:"error_bound,omitempty"`

	// Gateway fan-out (soigw only).
	ShardsOK     int   `json:"shards_ok,omitempty"`
	ShardsTotal  int   `json:"shards_total,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
}

// RequestLog writes one JSON line per request. A nil *RequestLog discards
// records, so callers log unconditionally.
type RequestLog struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer
}

// OpenRequestLog opens (appending) or creates the JSONL request log at path.
func OpenRequestLog(path string) (*RequestLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &RequestLog{w: f, c: f}, nil
}

// NewRequestLog wraps an arbitrary writer (tests).
func NewRequestLog(w io.Writer) *RequestLog {
	return &RequestLog{w: w}
}

// Log appends one record. Serialized internally; safe for concurrent use.
func (l *RequestLog) Log(rec RequestRecord) {
	if l == nil {
		return
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(b)
	l.mu.Unlock()
}

// Close closes the underlying file (no-op for writer-backed logs and nil).
func (l *RequestLog) Close() error {
	if l == nil || l.c == nil {
		return nil
	}
	return l.c.Close()
}

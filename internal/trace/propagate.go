package trace

import (
	"encoding/hex"
	"strings"
)

// TraceparentHeader is the W3C Trace Context request header carrying the
// trace id, the caller's span id, and the sampled flag across process
// boundaries.
const TraceparentHeader = "traceparent"

// TraceID is a 128-bit trace identifier, rendered as 32 lowercase hex
// digits (the W3C trace-id field).
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string {
	var b [16]byte
	putUint64(b[:8], id.Hi)
	putUint64(b[8:], id.Lo)
	return hex.EncodeToString(b[:])
}

// SpanID is a 64-bit span identifier, rendered as 16 lowercase hex digits
// (the W3C parent-id field).
type SpanID uint64

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string {
	var b [8]byte
	putUint64(b[:], uint64(id))
	return hex.EncodeToString(b[:])
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// Link is a parsed traceparent: the remote trace id, the caller's span id,
// and the sampled flag.
type Link struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return TraceID{}, false
	}
	id := TraceID{Hi: beUint64(b[:8]), Lo: beUint64(b[8:])}
	if id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

func beUint64(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

// ParseTraceparent parses a W3C traceparent header value:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Per the spec, an unknown (non-ff) version is accepted as long as the
// version-00 prefix fields parse; malformed values are rejected (the
// receiver then starts a fresh trace).
func ParseTraceparent(v string) (Link, bool) {
	v = strings.TrimSpace(v)
	parts := strings.Split(v, "-")
	if len(parts) < 4 {
		return Link{}, false
	}
	ver := parts[0]
	if len(ver) != 2 || ver == "ff" {
		return Link{}, false
	}
	if _, err := hex.DecodeString(ver); err != nil {
		return Link{}, false
	}
	// Version 00 has exactly four fields; future versions may append more.
	if ver == "00" && len(parts) != 4 {
		return Link{}, false
	}
	tid, ok := ParseTraceID(parts[1])
	if !ok {
		return Link{}, false
	}
	if len(parts[2]) != 16 {
		return Link{}, false
	}
	sb, err := hex.DecodeString(parts[2])
	if err != nil {
		return Link{}, false
	}
	sid := SpanID(beUint64(sb))
	if sid == 0 {
		return Link{}, false
	}
	if len(parts[3]) != 2 {
		return Link{}, false
	}
	fb, err := hex.DecodeString(parts[3])
	if err != nil {
		return Link{}, false
	}
	return Link{TraceID: tid, SpanID: sid, Sampled: fb[0]&0x01 != 0}, true
}

// FormatTraceparent renders a version-00 traceparent value.
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + sid.String() + "-" + flags
}

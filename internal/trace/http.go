package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Schema identifies the JSON shape served by /debug/traces/{id}.
const Schema = "soi.trace/v1"

// TraceJSON is the wire form of one retained trace (schema soi.trace/v1).
type TraceJSON struct {
	Schema     string     `json:"schema"`
	TraceID    string     `json:"trace_id"`
	Service    string     `json:"service"`
	Retained   string     `json:"retained"` // error | partial | slow | sampled
	StartTime  time.Time  `json:"start_time"`
	DurationMS float64    `json:"duration_ms"`
	Spans      []SpanJSON `json:"spans"`
}

// SpanJSON is one span in the tree. Children are nested; spans whose parent
// id is unknown locally (the parent lives in another process) are roots here
// and flagged remote_parent.
type SpanJSON struct {
	SpanID       string         `json:"span_id"`
	ParentSpanID string         `json:"parent_span_id,omitempty"`
	RemoteParent bool           `json:"remote_parent,omitempty"`
	Name         string         `json:"name"`
	StartTime    time.Time      `json:"start_time"`
	DurationMS   float64        `json:"duration_ms"`
	Running      bool           `json:"running,omitempty"`
	HTTPStatus   int            `json:"http_status,omitempty"`
	Error        string         `json:"error,omitempty"`
	Attrs        map[string]any `json:"attrs,omitempty"`
	Events       []EventJSON    `json:"events,omitempty"`
	Children     []SpanJSON     `json:"children,omitempty"`
}

// EventJSON is one span event; at_ms is relative to the span start.
type EventJSON struct {
	Name  string         `json:"name"`
	AtMS  float64        `json:"at_ms"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// summaryJSON is one row of the /debug/traces list view.
type summaryJSON struct {
	TraceID    string    `json:"trace_id"`
	Retained   string    `json:"retained"`
	Root       string    `json:"root"`
	StartTime  time.Time `json:"start_time"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	HTTPStatus int       `json:"http_status,omitempty"`
	Error      string    `json:"error,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// snapshotSpan freezes one span's mutable state.
func snapshotSpan(s *Span) SpanJSON {
	s.mu.Lock()
	attrs := attrMap(s.attrs)
	events := make([]EventJSON, 0, len(s.events))
	for _, ev := range s.events {
		events = append(events, EventJSON{
			Name:  ev.Name,
			AtMS:  float64(ev.At.Sub(s.start)) / float64(time.Millisecond),
			Attrs: attrMap(ev.Attrs),
		})
	}
	s.mu.Unlock()
	j := SpanJSON{
		SpanID:    s.id.String(),
		Name:      s.name,
		StartTime: s.start,
		Attrs:     attrs,
	}
	if len(events) > 0 {
		j.Events = events
	}
	if s.parent != 0 {
		j.ParentSpanID = s.parent.String()
	}
	if s.ended.Load() {
		j.DurationMS = float64(s.durNS.Load()) / float64(time.Millisecond)
	} else {
		j.Running = true
		j.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if st := int(s.httpStatus.Load()); st != 0 {
		j.HTTPStatus = st
	}
	if msg := s.errMsg.Load(); msg != nil {
		j.Error = *msg
	}
	return j
}

// Snapshot renders the trace as its soi.trace/v1 JSON form, assembling the
// span tree from parent links. Spans whose parent is not local become roots
// flagged remote_parent (their parent span lives across the wire).
func (tr *Trace) Snapshot(service string) TraceJSON {
	tr.mu.Lock()
	spans := make([]*Span, len(tr.spans))
	copy(spans, tr.spans)
	reason := tr.retainReason
	tr.mu.Unlock()

	// Freeze every span, then assemble the tree from parent links. A span
	// whose parent id is not local (it lives in another process) becomes a
	// root here, flagged remote_parent.
	flat := make([]*SpanJSON, 0, len(spans))
	byID := make(map[string]*SpanJSON, len(spans))
	for _, s := range spans {
		j := snapshotSpan(s)
		flat = append(flat, &j)
		byID[j.SpanID] = &j
	}
	childOf := make(map[string][]*SpanJSON)
	for _, j := range flat {
		if j.ParentSpanID == "" {
			continue
		}
		if _, ok := byID[j.ParentSpanID]; ok {
			childOf[j.ParentSpanID] = append(childOf[j.ParentSpanID], j)
		} else {
			j.RemoteParent = true
		}
	}
	var build func(j *SpanJSON) SpanJSON
	build = func(j *SpanJSON) SpanJSON {
		out := *j
		kids := childOf[j.SpanID]
		sort.SliceStable(kids, func(a, b int) bool { return kids[a].StartTime.Before(kids[b].StartTime) })
		for _, k := range kids {
			out.Children = append(out.Children, build(k))
		}
		return out
	}
	var roots []SpanJSON
	for _, j := range flat {
		if j.ParentSpanID == "" || j.RemoteParent {
			roots = append(roots, build(j))
		}
	}

	out := TraceJSON{
		Schema:    Schema,
		TraceID:   tr.id.String(),
		Service:   service,
		Retained:  reason,
		StartTime: tr.start,
		Spans:     roots,
	}
	if len(spans) > 0 {
		root := spans[0]
		if root.ended.Load() {
			out.DurationMS = float64(root.durNS.Load()) / float64(time.Millisecond)
		} else {
			out.DurationMS = float64(time.Since(root.start)) / float64(time.Millisecond)
		}
	}
	return out
}

func (tr *Trace) summary(spansLocked func() ([]*Span, string)) summaryJSON {
	spans, reason := spansLocked()
	sum := summaryJSON{
		TraceID:   tr.id.String(),
		Retained:  reason,
		StartTime: tr.start,
		Spans:     len(spans),
	}
	if len(spans) > 0 {
		root := spans[0]
		sum.Root = root.name
		if root.ended.Load() {
			sum.DurationMS = float64(root.durNS.Load()) / float64(time.Millisecond)
		}
		sum.HTTPStatus = int(root.httpStatus.Load())
		if msg := root.errMsg.Load(); msg != nil {
			sum.Error = *msg
		}
	}
	return sum
}

// Get returns the retained trace with the given id, or nil (nil-safe).
func (t *Tracer) Get(id TraceID) *Trace {
	if t == nil {
		return nil
	}
	return t.ring.get(id)
}

// Handler serves the retained-trace ring:
//
//	GET {prefix}        → newest-first list of trace summaries
//	GET {prefix}/{id}   → full soi.trace/v1 span tree
//
// On a nil tracer every request answers 404 "tracing disabled".
func (t *Tracer) Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		rest := strings.Trim(strings.TrimPrefix(r.URL.Path, prefix), "/")
		w.Header().Set("Content-Type", "application/json")
		if rest == "" {
			traces := t.ring.recent()
			out := struct {
				Schema  string        `json:"schema"`
				Service string        `json:"service"`
				Traces  []summaryJSON `json:"traces"`
			}{Schema: Schema, Service: t.opts.Service, Traces: make([]summaryJSON, 0, len(traces))}
			for _, tr := range traces {
				tr := tr
				out.Traces = append(out.Traces, tr.summary(func() ([]*Span, string) {
					tr.mu.Lock()
					defer tr.mu.Unlock()
					spans := make([]*Span, len(tr.spans))
					copy(spans, tr.spans)
					return spans, tr.retainReason
				}))
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(out)
			return
		}
		id, ok := ParseTraceID(rest)
		if !ok {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		tr := t.ring.get(id)
		if tr == nil {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tr.Snapshot(t.opts.Service))
	})
}

package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestTracer(opts Options) *Tracer {
	if opts.Service == "" {
		opts.Service = "test"
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = -1 // retention only by error/partial/slow unless the test opts in
	}
	return New(opts)
}

func TestTraceIDFormat(t *testing.T) {
	id := TraceID{Hi: 0x0102030405060708, Lo: 0x090a0b0c0d0e0f10}
	want := "0102030405060708090a0b0c0d0e0f10"
	if got := id.String(); got != want {
		t.Fatalf("TraceID.String() = %q, want %q", got, want)
	}
	back, ok := ParseTraceID(want)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", want, back, ok)
	}
	if got := SpanID(0xdeadbeef).String(); got != "00000000deadbeef" {
		t.Fatalf("SpanID.String() = %q", got)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := TraceID{Hi: 1, Lo: 2}
	sid := SpanID(3)
	v := FormatTraceparent(tid, sid, true)
	want := "00-00000000000000010000000000000002-0000000000000003-01"
	if v != want {
		t.Fatalf("FormatTraceparent = %q, want %q", v, want)
	}
	link, ok := ParseTraceparent(v)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected", v)
	}
	if link.TraceID != tid || link.SpanID != sid || !link.Sampled {
		t.Fatalf("round trip mismatch: %+v", link)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-short-0000000000000003-01",
		"00-00000000000000000000000000000000-0000000000000003-01",       // zero trace id
		"00-00000000000000010000000000000002-0000000000000000-01",       // zero span id
		"00-00000000000000010000000000000002-0000000000000003-0",        // short flags
		"ff-00000000000000010000000000000002-0000000000000003-01",       // forbidden version
		"zz-00000000000000010000000000000002-0000000000000003-01",       // non-hex version
		"00-00000000000000010000000000000002-0000000000000003-01-extra", // v00 with extra fields
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", v)
		}
	}
	// Future versions may carry extra fields.
	if _, ok := ParseTraceparent("42-00000000000000010000000000000002-0000000000000003-01-extra"); !ok {
		t.Errorf("future-version traceparent with extra field rejected")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.StartSpan(context.Background(), "noop")
	if span != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// Every span method must tolerate nil.
	span.SetAttrs(String("k", "v"))
	span.Event("e")
	span.SetHTTPStatus(200)
	span.SetError("x")
	span.End()
	if got := span.RequestID(); got != "" {
		t.Fatalf("nil span RequestID = %q", got)
	}
	if got := span.Traceparent(); got != "" {
		t.Fatalf("nil span Traceparent = %q", got)
	}
	if _, child := StartChild(ctx, "child"); child != nil {
		t.Fatal("StartChild from spanless ctx returned non-nil span")
	}
	req := httptest.NewRequest("GET", "/x", nil)
	if _, s := tr.StartRequest(req, "r"); s != nil {
		t.Fatal("nil tracer StartRequest returned non-nil span")
	}
	if tr.Get(TraceID{Hi: 1}) != nil {
		t.Fatal("nil tracer Get returned non-nil")
	}
	// The disabled handler answers 404.
	rec := httptest.NewRecorder()
	tr.Handler("/debug/traces").ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil tracer handler status = %d, want 404", rec.Code)
	}
}

func TestRetentionKeepsErrors(t *testing.T) {
	tr := newTestTracer(Options{})
	_, root := tr.StartSpan(context.Background(), "req")
	root.SetHTTPStatus(500)
	root.End()
	if tr.Get(root.TraceID()) == nil {
		t.Fatal("500 trace was not retained")
	}

	_, root2 := tr.StartSpan(context.Background(), "req")
	root2.SetError("boom")
	root2.End()
	if tr.Get(root2.TraceID()) == nil {
		t.Fatal("errored trace was not retained")
	}
}

func TestRetentionKeepsPartials(t *testing.T) {
	tr := newTestTracer(Options{})
	ctx, root := tr.StartSpan(context.Background(), "req")
	_, child := StartChild(ctx, "compute")
	child.SetHTTPStatus(http.StatusPartialContent)
	child.End()
	root.SetHTTPStatus(http.StatusPartialContent)
	root.End()
	got := tr.Get(root.TraceID())
	if got == nil {
		t.Fatal("206 trace was not retained")
	}
	snap := got.Snapshot("test")
	if snap.Retained != "partial" {
		t.Fatalf("retained reason = %q, want partial", snap.Retained)
	}
}

func TestRetentionDropsBoring(t *testing.T) {
	tr := newTestTracer(Options{SlowThreshold: time.Hour})
	_, root := tr.StartSpan(context.Background(), "req")
	root.SetHTTPStatus(200)
	root.End()
	if tr.Get(root.TraceID()) != nil {
		t.Fatal("boring 200 trace was retained with sampling disabled")
	}
}

func TestRetentionKeepsSlow(t *testing.T) {
	tr := newTestTracer(Options{SlowThreshold: time.Nanosecond})
	_, root := tr.StartSpan(context.Background(), "req")
	root.SetHTTPStatus(200)
	time.Sleep(time.Millisecond)
	root.End()
	got := tr.Get(root.TraceID())
	if got == nil {
		t.Fatal("slow trace was not retained")
	}
	if snap := got.Snapshot("test"); snap.Retained != "slow" {
		t.Fatalf("retained reason = %q, want slow", snap.Retained)
	}
}

func TestSamplingRetainsEverythingAtRateOne(t *testing.T) {
	tr := newTestTracer(Options{SampleRate: 1, SlowThreshold: time.Hour})
	for i := 0; i < 10; i++ {
		_, root := tr.StartSpan(context.Background(), "req")
		root.SetHTTPStatus(200)
		root.End()
		if tr.Get(root.TraceID()) == nil {
			t.Fatalf("trace %d dropped at sample rate 1", i)
		}
	}
}

func TestEndIdempotentAndCommitOnce(t *testing.T) {
	tel := newTestTracer(Options{SampleRate: 1})
	_, root := tel.StartSpan(context.Background(), "req")
	root.End()
	d1 := root.durNS.Load()
	time.Sleep(2 * time.Millisecond)
	root.End()
	if d2 := root.durNS.Load(); d2 != d1 {
		t.Fatalf("second End changed duration: %d -> %d", d1, d2)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := newTestTracer(Options{RingSize: 2, SampleRate: 1})
	var ids []TraceID
	for i := 0; i < 3; i++ {
		_, root := tr.StartSpan(context.Background(), "req")
		root.End()
		ids = append(ids, root.TraceID())
	}
	if tr.Get(ids[0]) != nil {
		t.Fatal("oldest trace should have been overwritten")
	}
	if tr.Get(ids[1]) == nil || tr.Get(ids[2]) == nil {
		t.Fatal("newest traces missing from ring")
	}
	recent := tr.ring.recent()
	if len(recent) != 2 {
		t.Fatalf("recent len = %d, want 2", len(recent))
	}
	if recent[0].id != ids[2] || recent[1].id != ids[1] {
		t.Fatal("recent not newest-first")
	}
}

func TestStartRequestContinuesRemoteTrace(t *testing.T) {
	tr := newTestTracer(Options{SampleRate: 1})
	remote := Link{TraceID: TraceID{Hi: 7, Lo: 9}, SpanID: 11, Sampled: true}
	req := httptest.NewRequest("GET", "/v1/sphere/1", nil)
	req.Header.Set(TraceparentHeader, FormatTraceparent(remote.TraceID, remote.SpanID, remote.Sampled))
	ctx, span := tr.StartRequest(req, "soid.sphere")
	if got := span.TraceID(); got != remote.TraceID {
		t.Fatalf("continued trace id = %v, want %v", got, remote.TraceID)
	}
	if span.parent != remote.SpanID {
		t.Fatalf("span parent = %v, want %v", span.parent, remote.SpanID)
	}
	_, child := StartChild(ctx, "compute")
	child.End()
	span.End()

	got := tr.Get(remote.TraceID)
	if got == nil {
		t.Fatal("continued trace not retained")
	}
	snap := got.Snapshot("test")
	if len(snap.Spans) != 1 {
		t.Fatalf("root count = %d, want 1", len(snap.Spans))
	}
	root := snap.Spans[0]
	if !root.RemoteParent {
		t.Fatal("continued root should be flagged remote_parent")
	}
	if root.ParentSpanID != remote.SpanID.String() {
		t.Fatalf("root parent = %q, want %q", root.ParentSpanID, remote.SpanID.String())
	}
	if len(root.Children) != 1 || root.Children[0].Name != "compute" {
		t.Fatalf("child spans = %+v", root.Children)
	}
}

func TestSharedTracerAssemblesOneTrace(t *testing.T) {
	// A gateway span and a "remote" server span continuing it via
	// traceparent land in the same Trace when the tracer is shared — the
	// basis for the end-to-end acceptance test.
	tr := newTestTracer(Options{SampleRate: 1})
	ctx, gw := tr.StartSpan(context.Background(), "soigw.spread")
	_, leg := StartChild(ctx, "shard.leg", Int("shard", 0))

	req := httptest.NewRequest("GET", "/v1/spread", nil)
	req.Header.Set(TraceparentHeader, leg.Traceparent())
	_, srv := tr.StartRequest(req, "soid.spread")
	if srv.TraceID() != gw.TraceID() {
		t.Fatal("server span did not join the gateway trace")
	}
	srv.End()
	leg.End()
	gw.End()

	snap := tr.Get(gw.TraceID()).Snapshot("test")
	if len(snap.Spans) != 1 {
		t.Fatalf("want single root, got %d", len(snap.Spans))
	}
	legJSON := snap.Spans[0].Children
	if len(legJSON) != 1 || len(legJSON[0].Children) != 1 {
		t.Fatalf("span tree mismatch: %+v", snap.Spans)
	}
	if legJSON[0].Children[0].Name != "soid.spread" {
		t.Fatalf("server span not parented under leg: %+v", legJSON[0])
	}
}

func TestHandlerServesListAndTree(t *testing.T) {
	tr := newTestTracer(Options{SampleRate: 1})
	ctx, root := tr.StartSpan(context.Background(), "req", String("endpoint", "sphere"))
	root.SetHTTPStatus(206)
	root.Event("degraded", Int("achieved", 120), Int("requested", 400))
	_, child := StartChild(ctx, "compute")
	child.End()
	root.End()

	h := tr.Handler("/debug/traces")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("list status = %d", rec.Code)
	}
	var list struct {
		Schema string        `json:"schema"`
		Traces []summaryJSON `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if list.Schema != Schema || len(list.Traces) != 1 {
		t.Fatalf("list = %+v", list)
	}
	if list.Traces[0].HTTPStatus != 206 || list.Traces[0].Retained != "partial" {
		t.Fatalf("summary = %+v", list.Traces[0])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+root.RequestID(), nil))
	if rec.Code != 200 {
		t.Fatalf("tree status = %d", rec.Code)
	}
	var tree TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
		t.Fatalf("tree decode: %v", err)
	}
	if tree.Schema != Schema {
		t.Fatalf("tree schema = %q", tree.Schema)
	}
	if tree.TraceID != root.RequestID() {
		t.Fatalf("tree id = %q, want %q", tree.TraceID, root.RequestID())
	}
	spans := tree.Spans
	if len(spans) != 1 || len(spans[0].Children) != 1 {
		t.Fatalf("tree shape: %+v", spans)
	}
	if len(spans[0].Events) != 1 || spans[0].Events[0].Name != "degraded" {
		t.Fatalf("events: %+v", spans[0].Events)
	}
	if got := spans[0].Attrs["endpoint"]; got != "sphere" {
		t.Fatalf("attrs: %+v", spans[0].Attrs)
	}

	// Unknown and malformed ids.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+strings.Repeat("ab", 16), nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/zzz", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id status = %d", rec.Code)
	}
}

func TestInjectSetsTraceparent(t *testing.T) {
	tr := newTestTracer(Options{})
	ctx, span := tr.StartSpan(context.Background(), "leg")
	h := http.Header{}
	Inject(ctx, h)
	link, ok := ParseTraceparent(h.Get(TraceparentHeader))
	if !ok {
		t.Fatalf("injected traceparent unparseable: %q", h.Get(TraceparentHeader))
	}
	if link.TraceID != span.TraceID() || link.SpanID != span.ID() {
		t.Fatalf("injected link %+v does not match span", link)
	}
	// No span in ctx → no header.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatal("Inject wrote header without a span")
	}
	span.End()
}

func TestConcurrentSpanUse(t *testing.T) {
	tr := newTestTracer(Options{SampleRate: 1})
	ctx, root := tr.StartSpan(context.Background(), "req")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, c := StartChild(ctx, "worker")
			c.Event("tick", Int("i", int64(i)))
			c.SetAttrs(Int("i", int64(i)))
			c.End()
		}(i)
	}
	// Late events racing with snapshotting must be safe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			root.Event("late")
		}
	}()
	wg.Wait()
	root.End()
	snap := tr.Get(root.TraceID()).Snapshot("test")
	if len(snap.Spans[0].Children) != 8 {
		t.Fatalf("children = %d, want 8", len(snap.Spans[0].Children))
	}
}

func TestRequestLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewRequestLog(&buf)
	l.Log(RequestRecord{
		Service:  "soid",
		TraceID:  "abc",
		Endpoint: "sphere",
		Path:     "/v1/sphere/3",
		Status:   206,
		Partial:  true, Achieved: 120, Requested: 400, ErrorBound: 0.08,
	})
	l.Log(RequestRecord{Service: "soigw", Endpoint: "spread", Status: 200,
		ShardsOK: 2, ShardsTotal: 2})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var rec RequestRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 1 decode: %v", err)
	}
	if rec.Status != 206 || !rec.Partial || rec.Achieved != 120 || rec.Time.IsZero() {
		t.Fatalf("record = %+v", rec)
	}
	// nil log discards.
	var nilLog *RequestLog
	nilLog.Log(RequestRecord{})
	if err := nilLog.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestOpenRequestLogAppends(t *testing.T) {
	path := t.TempDir() + "/req.jsonl"
	l, err := OpenRequestLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Log(RequestRecord{Endpoint: "a", Status: 200})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenRequestLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l2.Log(RequestRecord{Endpoint: "b", Status: 200})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(string(b)), "\n")); got != 2 {
		t.Fatalf("appended log lines = %d, want 2", got)
	}
}

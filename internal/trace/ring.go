package trace

import "sync"

// ring is the fixed-size retained-trace buffer: the newest size traces that
// survived the tail-based retention decision, overwriting the oldest. Lookup
// is a linear scan — the ring is small (hundreds) and read only by humans
// via /debug/traces.
type ring struct {
	mu     sync.Mutex
	traces []*Trace // circular; len == cap == size once full
	next   int      // slot the next add overwrites
	total  uint64   // lifetime adds (monotone, for the list view)
}

func newRing(size int) *ring {
	return &ring{traces: make([]*Trace, 0, size)}
}

func (r *ring) add(tr *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.traces) < cap(r.traces) {
		r.traces = append(r.traces, tr)
		r.next = len(r.traces) % cap(r.traces)
		return
	}
	r.traces[r.next] = tr
	r.next = (r.next + 1) % len(r.traces)
}

// recent returns retained traces newest-first.
func (r *ring) recent() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.traces))
	// Walk backwards from the most recently written slot.
	for i := 0; i < len(r.traces); i++ {
		idx := (r.next - 1 - i + 2*len(r.traces)) % len(r.traces)
		out = append(out, r.traces[idx])
	}
	return out
}

// get returns the retained trace with the given id, or nil.
func (r *ring) get(id TraceID) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tr := range r.traces {
		if tr.id == id {
			return tr
		}
	}
	return nil
}

package trace

import (
	"context"
	"testing"
)

// The disabled-tracing contract, mirrored from BenchmarkCounterDisabled in
// internal/telemetry: with a nil tracer, instrumented code pays one nil
// check per event and must not allocate.

func BenchmarkSpanEventDisabled(b *testing.B) {
	var tr *Tracer
	_, span := tr.StartSpan(context.Background(), "req")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		span.Event("tick")
	}
}

func BenchmarkStartChildDisabled(b *testing.B) {
	ctx := context.Background() // no span: the disabled serving path
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, c := StartChild(ctx, "compute")
		c.End()
	}
}

func BenchmarkStartSpanDisabled(b *testing.B) {
	var tr *Tracer
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartSpan(ctx, "req")
		s.End()
	}
}

func BenchmarkSpanEventEnabled(b *testing.B) {
	tr := New(Options{Service: "bench", SampleRate: -1})
	_, span := tr.StartSpan(context.Background(), "req")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Roll the span periodically so the events slice stays bounded.
		if i&0xffff == 0xffff {
			span.End()
			_, span = tr.StartSpan(context.Background(), "req")
		}
		span.Event("tick")
	}
	b.StopTimer()
	span.End()
}

func BenchmarkStartChildEnabled(b *testing.B) {
	tr := New(Options{Service: "bench", SampleRate: -1})
	ctx, root := tr.StartSpan(context.Background(), "req")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, c := StartChild(ctx, "compute")
		c.End()
	}
}

func BenchmarkTraceRoundTripDropped(b *testing.B) {
	// Full request shape: root + two children, boring 200, dropped by
	// retention. This is the steady-state cost of enabled tracing on the
	// happy path.
	tr := New(Options{Service: "bench", SampleRate: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, root := tr.StartSpan(context.Background(), "req")
		_, c1 := StartChild(ctx, "cache.lookup")
		c1.End()
		_, c2 := StartChild(ctx, "compute")
		c2.End()
		root.SetHTTPStatus(200)
		root.End()
	}
}

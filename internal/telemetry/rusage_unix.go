//go:build linux || darwin

package telemetry

import "syscall"

// readRusage returns whole-process CPU seconds (user+system) and peak RSS
// in bytes. Linux reports ru_maxrss in KiB, darwin in bytes.
func readRusage() (cpuSeconds float64, peakRSSBytes int64) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	cpu := float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
	rss := ru.Maxrss
	if rssScaleKiB {
		rss *= 1024
	}
	return cpu, rss
}

package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 observations of 1000: every quantile lands in the [512,1023]
	// bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := s.Quantile(q)
		if v < 512 || v > 1023 {
			t.Errorf("Quantile(%v) = %v, want within [512,1023]", q, v)
		}
	}
	if s.P50 != s.Quantile(0.5) || s.P90 != s.Quantile(0.9) || s.P99 != s.Quantile(0.99) {
		t.Error("snapshot P50/P90/P99 disagree with Quantile()")
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations (~100) and 10 slow ones (~100000): p50 must sit
	// in the fast bucket, p99 in the slow bucket.
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	s := h.Snapshot()
	if s.P50 < 64 || s.P50 > 127 {
		t.Errorf("P50 = %v, want in [64,127]", s.P50)
	}
	if s.P99 < 65536 || s.P99 > 131071 {
		t.Errorf("P99 = %v, want in [65536,131071]", s.P99)
	}
	// Quantiles are monotone in q.
	if !(s.P50 <= s.P90 && s.P90 <= s.P99) {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50, s.P90, s.P99)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v", got)
	}
	h := &Histogram{}
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v", got)
	}
	h.Observe(0) // lands in the v<=0 bucket
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("zero-bucket quantile = %v", got)
	}
	// Out-of-range q clamps.
	h2 := &Histogram{}
	h2.Observe(10)
	s2 := h2.Snapshot()
	if s2.Quantile(-1) != s2.Quantile(0) || s2.Quantile(2) != s2.Quantile(1) {
		t.Error("out-of-range q did not clamp")
	}
}

func TestObserveExemplar(t *testing.T) {
	h := &Histogram{}
	h.ObserveExemplar(100, "trace-a")
	h.ObserveExemplar(900, "trace-b")
	h.ObserveExemplar(50, "trace-c")
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.ExemplarLast == nil || s.ExemplarLast.TraceID != "trace-c" {
		t.Errorf("last exemplar = %+v, want trace-c", s.ExemplarLast)
	}
	if s.ExemplarMax == nil || s.ExemplarMax.TraceID != "trace-b" || s.ExemplarMax.Value != 900 {
		t.Errorf("max exemplar = %+v, want trace-b/900", s.ExemplarMax)
	}
	// Empty trace id observes without attaching an exemplar.
	h2 := &Histogram{}
	h2.ObserveExemplar(5, "")
	s2 := h2.Snapshot()
	if s2.Count != 1 || s2.ExemplarLast != nil || s2.ExemplarMax != nil {
		t.Errorf("empty-id exemplar leaked: %+v", s2)
	}
	// Nil histogram discards.
	var nilH *Histogram
	nilH.ObserveExemplar(5, "x")
}

func TestObserveExemplarConcurrentMax(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveExemplar(int64(g*1000+i), "t")
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.ExemplarMax == nil || s.ExemplarMax.Value != 7999 {
		t.Fatalf("max exemplar = %+v, want value 7999", s.ExemplarMax)
	}
}

func TestReportTableShowsQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("x.latency")
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	var b strings.Builder
	r.Report().WriteTable(&b)
	out := b.String()
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=") {
		t.Fatalf("table missing quantiles:\n%s", out)
	}
}

// --- Span end/child races (see span.go) ----------------------------------

func TestSpanEndStartSpanRace(t *testing.T) {
	r := New()
	root := r.StartSpan("root")
	var wg sync.WaitGroup
	// Concurrent End and StartSpan on the same span must be race-free and
	// leave a consistent child list.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.StartSpan("child")
				c.AddUnits(1)
				c.End()
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				root.End()
			}
		}()
	}
	wg.Wait()
	snap := r.Report().Spans[0]
	if len(snap.Children) != 800 {
		t.Fatalf("children = %d, want 800", len(snap.Children))
	}
	if snap.Running {
		t.Fatal("ended span snapshots as running")
	}
}

func TestSpanEndIdempotentDuration(t *testing.T) {
	r := New()
	s := r.StartSpan("phase")
	s.End()
	d1 := s.durNS.Load()
	time.Sleep(5 * time.Millisecond)
	s.End() // second End must not move the frozen duration
	if d2 := s.durNS.Load(); d2 != d1 {
		t.Fatalf("duration moved on second End: %d -> %d", d1, d2)
	}
	// Concurrent first Ends: exactly one winner, duration stays put.
	s2 := r.StartSpan("phase2")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s2.End()
		}()
	}
	wg.Wait()
	d := s2.durNS.Load()
	time.Sleep(2 * time.Millisecond)
	s2.End()
	if s2.durNS.Load() != d {
		t.Fatal("duration moved after concurrent Ends")
	}
}

package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span measures one phase of a run: wall duration plus an optional count of
// units processed (worlds, nodes, trials, ...). Spans nest: child spans
// started from a parent render indented beneath it in the report. Spans are
// coarse — one per phase, not one per unit — so the mutex protecting the
// child list is never on a hot path. A nil *Span discards everything and
// hands out nil children.
type Span struct {
	name  string
	start time.Time

	units atomic.Int64
	ended atomic.Bool
	durNS atomic.Int64

	mu       sync.Mutex
	children []*Span
}

// StartSpan opens a top-level phase span. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now()}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// StartSpan opens a child span nested under s.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddUnits adds n to the span's units-processed count.
func (s *Span) AddUnits(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.units.Add(n)
}

// End closes the span, freezing its duration. End is idempotent; only the
// first call wins. Spans never ended render as still running at snapshot
// time.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.ended.CompareAndSwap(false, true) {
		s.durNS.Store(int64(time.Since(s.start)))
	}
}

// SpanSnapshot is a point-in-time copy of one span and its subtree.
type SpanSnapshot struct {
	Name      string         `json:"name"`
	Seconds   float64        `json:"seconds"`
	Units     int64          `json:"units,omitempty"`
	UnitsPerS float64        `json:"units_per_second,omitempty"`
	Running   bool           `json:"running,omitempty"` // span had not ended at snapshot time
	Children  []SpanSnapshot `json:"children,omitempty"`
}

func (s *Span) snapshot(now time.Time) SpanSnapshot {
	out := SpanSnapshot{Name: s.name, Units: s.units.Load()}
	if s.ended.Load() {
		out.Seconds = time.Duration(s.durNS.Load()).Seconds()
	} else {
		out.Seconds = now.Sub(s.start).Seconds()
		out.Running = true
	}
	if out.Units > 0 && out.Seconds > 0 {
		out.UnitsPerS = float64(out.Units) / out.Seconds
	}
	s.mu.Lock()
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		out.Children = append(out.Children, c.snapshot(now))
	}
	return out
}

//go:build !linux && !darwin

package telemetry

// readRusage reports zeros on platforms without getrusage; the report's
// cpu_seconds and peak_rss_bytes fields are best-effort.
func readRusage() (cpuSeconds float64, peakRSSBytes int64) {
	return 0, 0
}

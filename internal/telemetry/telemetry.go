// Package telemetry is the observability substrate for every long-running
// pipeline in this repository: a race-safe metrics registry (counters,
// gauges, log-scale histograms), lightweight phase spans, and an end-of-run
// structured report. It depends only on the standard library.
//
// The design is built around one invariant: a disabled registry must cost
// (almost) nothing on the hot path. Every handle type (*Counter, *Gauge,
// *Histogram, *Span) is nil-safe — calling any method on a nil handle is a
// no-op — and a nil *Registry hands out nil handles. Instrumented code
// therefore resolves its handles once up front and never branches on
// "telemetry enabled?" again; the disabled cost is a nil check per update.
//
// On the enabled path all updates are single atomic operations; the
// registry mutex is taken only at handle registration and at snapshot time,
// never per update. Hot loops (per-edge coin flips, per-trial cascades)
// should still accumulate locally and publish once per unit of work — see
// worlds.Metrics for the pattern.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative deltas are ignored so the counter stays monotone.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. A nil counter reads as 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (e.g. tasks currently active).
// The zero value is ready to use; a nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value. A nil gauge reads as 0.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of log2 buckets: bucket i holds observations v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0 holds v <= 0.
// 65 buckets cover the full non-negative int64 range.
const histBuckets = 65

// Histogram records an int64 distribution in fixed power-of-two buckets.
// Observe is a bucket-index computation plus two atomic adds; there is no
// lock and no allocation. A nil *Histogram discards observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64

	// Exemplars link the aggregate distribution back to individual traces:
	// the most recent exemplar-carrying observation and the largest one seen
	// (the worst request so far — the one an operator wants to pull up in
	// /debug/traces/{id}).
	exLast atomic.Pointer[Exemplar]
	exMax  atomic.Pointer[Exemplar]
}

// Exemplar ties one observed value to the trace that produced it, so a
// latency histogram's tail is one copy-paste away from the full span tree.
type Exemplar struct {
	Value   int64  `json:"value"`
	TraceID string `json:"trace_id"`
}

// Observe records one value. Values <= 0 land in the first bucket.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// ObserveExemplar records one value and, when traceID is non-empty, attaches
// it as an exemplar: it becomes the "last" exemplar unconditionally and the
// "max" exemplar if it exceeds the current maximum. Lock-free.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	ex := &Exemplar{Value: v, TraceID: traceID}
	h.exLast.Store(ex)
	for {
		cur := h.exMax.Load()
		if cur != nil && cur.Value >= v {
			return
		}
		if h.exMax.CompareAndSwap(cur, ex) {
			return
		}
	}
}

// Bucket is one non-empty histogram bucket: Count observations were <= Le
// (and greater than the previous bucket's Le). Counts are per-bucket, not
// cumulative; the Prometheus renderer accumulates them.
type Bucket struct {
	Le    int64 `json:"le"` // inclusive upper bound: 2^i - 1
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. P50/P90/P99 are
// quantile estimates derived from the log2 buckets (linear interpolation
// within the matching bucket), so reports carry ready-made quantiles instead
// of requiring readers to reconstruct them from bucket counts.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50,omitempty"`
	P90     float64  `json:"p90,omitempty"`
	P99     float64  `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"` // non-empty buckets, ascending Le
	// ExemplarLast / ExemplarMax tie the distribution to concrete traces:
	// the most recent and the largest exemplar-carrying observations.
	ExemplarLast *Exemplar `json:"exemplar_last,omitempty"`
	ExemplarMax  *Exemplar `json:"exemplar_max,omitempty"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts:
// the matching log2 bucket is found by cumulative rank and the value is
// linearly interpolated across its [2^(i-1), 2^i - 1] range. The estimate is
// exact at bucket boundaries and within a factor of 2 inside a bucket —
// the resolution the log2 layout buys.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for _, b := range s.Buckets {
		prev := float64(cum)
		cum += b.Count
		if float64(cum) >= rank {
			// Bucket with Le = 2^i - 1 holds v in [2^(i-1), 2^i - 1]; the
			// first bucket (Le 0) holds v <= 0.
			lo := float64(0)
			if b.Le > 0 {
				lo = float64(b.Le+1) / 2
			}
			hi := float64(b.Le)
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if b.Count > 0 {
				frac = (rank - prev) / float64(b.Count)
			}
			return lo + frac*(hi-lo)
		}
	}
	return float64(s.Buckets[len(s.Buckets)-1].Le)
}

// Snapshot copies the histogram's current state. Concurrent Observe calls
// may tear count/sum/buckets slightly relative to each other; each value is
// individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(1)<<uint(i) - 1 // bucket i holds v with Len64(v)==i, so v <= 2^i - 1
		if i >= 63 {
			le = 1<<63 - 1
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
	}
	if s.Count > 0 {
		s.P50 = s.Quantile(0.50)
		s.P90 = s.Quantile(0.90)
		s.P99 = s.Quantile(0.99)
	}
	s.ExemplarLast = h.exLast.Load()
	s.ExemplarMax = h.exMax.Load()
	return s
}

// Registry owns a run's metrics, spans, and run-info block. Create one per
// process run with New; a nil *Registry is a valid "telemetry disabled"
// registry whose handle constructors return nil handles.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []*Span
	info     runInfo
}

type runInfo struct {
	tool      string
	graphHash uint64
	hasHash   bool
	seed      uint64
	hasSeed   bool
	samples   int64
	params    map[string]string
}

// New returns an enabled registry with its wall clock started.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Names are dotted paths ("pool.tasks_done"); the Prometheus renderer
// maps them to soi_pool_tasks_done_total. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SetTool records the CLI name for the report's RunInfo block.
func (r *Registry) SetTool(tool string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.info.tool = tool
	r.mu.Unlock()
}

// SetGraphHash records the input graph's content hash (checkpoint.Hasher
// fingerprint) so reports from different machines are comparable.
func (r *Registry) SetGraphHash(h uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.info.graphHash = h
	r.info.hasHash = true
	r.mu.Unlock()
}

// SetSeed records the run's master RNG seed.
func (r *Registry) SetSeed(seed uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.info.seed = seed
	r.info.hasSeed = true
	r.mu.Unlock()
}

// SetSamplesAchieved records the number of possible worlds actually
// materialized (may be below the request under a deadline budget).
func (r *Registry) SetSamplesAchieved(n int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.info.samples = n
	r.mu.Unlock()
}

// SetParam records one run parameter (flag value) for the report.
func (r *Registry) SetParam(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.info.params == nil {
		r.info.params = make(map[string]string)
	}
	r.info.params[key] = value
	r.mu.Unlock()
}

// sortedNames returns m's keys in ascending order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

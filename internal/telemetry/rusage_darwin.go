//go:build darwin

package telemetry

// Darwin getrusage reports ru_maxrss in bytes.
const rssScaleKiB = false

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// ReportSchema identifies the JSON layout of Report. Bump on incompatible
// change; DESIGN.md §5 documents the schema.
const ReportSchema = "soi.telemetry.report/v1"

// RunInfo makes a report comparable across machines and runs: what ran, on
// which input, with which seed, and what it cost.
type RunInfo struct {
	Tool            string            `json:"tool,omitempty"`
	GraphHash       string            `json:"graph_hash,omitempty"` // hex checkpoint.Hasher fingerprint
	Seed            *uint64           `json:"seed,omitempty"`
	Params          map[string]string `json:"params,omitempty"`
	SamplesAchieved int64             `json:"samples_achieved,omitempty"`
	StartTime       time.Time         `json:"start_time"`
	WallSeconds     float64           `json:"wall_seconds"`
	CPUSeconds      float64           `json:"cpu_seconds"`              // user+system, whole process
	PeakRSSBytes    int64             `json:"peak_rss_bytes,omitempty"` // 0 where getrusage is unavailable
	GoVersion       string            `json:"go_version"`
	GOOS            string            `json:"goos"`
	GOARCH          string            `json:"goarch"`
	NumCPU          int               `json:"num_cpu"`
	GOMAXPROCS      int               `json:"gomaxprocs"`
}

// Report is the end-of-run snapshot: RunInfo plus every metric and span.
type Report struct {
	Schema     string                       `json:"schema"`
	RunInfo    RunInfo                      `json:"run_info"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// Report snapshots the registry. Safe to call while workers are still
// updating metrics (each value is read atomically); unended spans render
// with Running=true. A nil registry reports only the schema and process
// facts.
func (r *Registry) Report() Report {
	now := time.Now()
	rep := Report{
		Schema: ReportSchema,
		RunInfo: RunInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	cpu, rss := readRusage()
	rep.RunInfo.CPUSeconds = cpu
	rep.RunInfo.PeakRSSBytes = rss
	if r == nil {
		return rep
	}
	rep.RunInfo.StartTime = r.start
	rep.RunInfo.WallSeconds = now.Sub(r.start).Seconds()

	r.mu.Lock()
	defer r.mu.Unlock()
	rep.RunInfo.Tool = r.info.tool
	if r.info.hasHash {
		rep.RunInfo.GraphHash = fmt.Sprintf("%016x", r.info.graphHash)
	}
	if r.info.hasSeed {
		seed := r.info.seed
		rep.RunInfo.Seed = &seed
	}
	rep.RunInfo.SamplesAchieved = r.info.samples
	if len(r.info.params) > 0 {
		rep.RunInfo.Params = make(map[string]string, len(r.info.params))
		for k, v := range r.info.params {
			rep.RunInfo.Params[k] = v
		}
	}
	if len(r.counters) > 0 {
		rep.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			rep.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		rep.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			rep.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		rep.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			rep.Histograms[name] = h.Snapshot()
		}
	}
	for _, s := range r.spans {
		rep.Spans = append(rep.Spans, s.snapshot(now))
	}
	return rep
}

// JSON renders the report as indented JSON with a trailing newline.
func (rep Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteTable renders the report as a fixed-width human table, the stderr
// companion to the JSON artifact.
func (rep Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "--- telemetry report")
	if rep.RunInfo.Tool != "" {
		fmt.Fprintf(w, " (%s)", rep.RunInfo.Tool)
	}
	fmt.Fprintln(w, " ---")
	fmt.Fprintf(w, "  wall %.3fs  cpu %.3fs", rep.RunInfo.WallSeconds, rep.RunInfo.CPUSeconds)
	if rep.RunInfo.PeakRSSBytes > 0 {
		fmt.Fprintf(w, "  peak-rss %s", formatBytes(rep.RunInfo.PeakRSSBytes))
	}
	if rep.RunInfo.SamplesAchieved > 0 {
		fmt.Fprintf(w, "  samples %d", rep.RunInfo.SamplesAchieved)
	}
	fmt.Fprintln(w)
	if rep.RunInfo.GraphHash != "" {
		fmt.Fprintf(w, "  graph %s", rep.RunInfo.GraphHash)
		if rep.RunInfo.Seed != nil {
			fmt.Fprintf(w, "  seed %d", *rep.RunInfo.Seed)
		}
		fmt.Fprintln(w)
	}
	if len(rep.Spans) > 0 {
		fmt.Fprintln(w, "  spans:")
		for _, s := range rep.Spans {
			writeSpanRow(w, s, 2)
		}
	}
	if len(rep.Counters) > 0 {
		fmt.Fprintln(w, "  counters:")
		for _, name := range sortedNames(rep.Counters) {
			fmt.Fprintf(w, "    %-36s %d\n", name, rep.Counters[name])
		}
	}
	if len(rep.Gauges) > 0 {
		fmt.Fprintln(w, "  gauges:")
		for _, name := range sortedNames(rep.Gauges) {
			fmt.Fprintf(w, "    %-36s %d\n", name, rep.Gauges[name])
		}
	}
	if len(rep.Histograms) > 0 {
		fmt.Fprintln(w, "  histograms:")
		for _, name := range sortedNames(rep.Histograms) {
			h := rep.Histograms[name]
			fmt.Fprintf(w, "    %-36s count=%d sum=%d mean=%.2f", name, h.Count, h.Sum, h.Mean)
			if h.Count > 0 {
				fmt.Fprintf(w, " p50=%.0f p90=%.0f p99=%.0f", h.P50, h.P90, h.P99)
			}
			fmt.Fprintln(w)
		}
	}
}

func writeSpanRow(w io.Writer, s SpanSnapshot, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s%-*s %8.3fs", indent, 40-2*depth, s.Name, s.Seconds)
	if s.Units > 0 {
		fmt.Fprintf(w, "  %d units (%.0f/s)", s.Units, s.UnitsPerS)
	}
	if s.Running {
		fmt.Fprintf(w, "  [running]")
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		writeSpanRow(w, c, depth+1)
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

//go:build linux

package telemetry

// Linux getrusage reports ru_maxrss in kilobytes.
const rssScaleKiB = true

package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives counters, gauges, and histograms from many
// goroutines at once. Run under -race this is the registry's thread-safety
// proof; the totals check catches lost updates.
func TestConcurrentHammer(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Half the goroutines resolve handles themselves to exercise
			// concurrent registration of the same names.
			c := r.Counter("hammer.count")
			g := r.Gauge("hammer.gauge")
			h := r.Histogram("hammer.hist")
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(j % 1000))
			}
		}(i)
	}
	wg.Wait()

	if got := r.Counter("hammer.count").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("hammer.gauge").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	hs := r.Histogram("hammer.hist").Snapshot()
	if hs.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", hs.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, b := range hs.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != hs.Count {
		t.Errorf("bucket sum = %d, want %d", bucketSum, hs.Count)
	}
}

// TestNilSafety: a nil registry and nil handles must be inert, not panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	s := r.StartSpan("x")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	child := s.StartSpan("y")
	child.AddUnits(1)
	child.End()
	s.End()
	r.SetTool("t")
	r.SetGraphHash(1)
	r.SetSeed(2)
	r.SetSamplesAchieved(3)
	r.SetParam("k", "v")
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil handles must read as zero")
	}
	rep := r.Report()
	if rep.Schema != ReportSchema {
		t.Fatalf("nil-registry report schema = %q", rep.Schema)
	}
}

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3) // ignored: counters never go down
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1000, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 9 {
		t.Fatalf("count = %d, want 9", s.Count)
	}
	if s.Sum != 1020 {
		t.Fatalf("sum = %d, want 1020", s.Sum)
	}
	// Expected buckets: le=0 {0,-5}, le=1 {1}, le=3 {2,3}, le=7 {4,7},
	// le=15 {8}, le=1023 {1000}.
	want := []Bucket{{0, 2}, {1, 1}, {3, 2}, {7, 2}, {15, 1}, {1023, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestSpanNesting(t *testing.T) {
	r := New()
	root := r.StartSpan("phase.root")
	child := root.StartSpan("phase.child")
	child.AddUnits(10)
	time.Sleep(time.Millisecond)
	child.End()
	child.End()                           // idempotent
	grand := root.StartSpan("phase.open") // deliberately left running

	rep := r.Report()
	if len(rep.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(rep.Spans))
	}
	got := rep.Spans[0]
	if got.Name != "phase.root" || !got.Running {
		t.Fatalf("root span = %+v", got)
	}
	if len(got.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(got.Children))
	}
	c0 := got.Children[0]
	if c0.Name != "phase.child" || c0.Running || c0.Units != 10 || c0.Seconds <= 0 {
		t.Fatalf("child span = %+v", c0)
	}
	if c0.UnitsPerS <= 0 {
		t.Fatalf("child units/s = %v", c0.UnitsPerS)
	}
	if got.Children[1].Name != "phase.open" || !got.Children[1].Running {
		t.Fatalf("open child = %+v", got.Children[1])
	}
	_ = grand
}

func TestReportJSON(t *testing.T) {
	r := New()
	r.SetTool("sphere")
	r.SetGraphHash(0xdeadbeef)
	r.SetSeed(42)
	r.SetSamplesAchieved(100)
	r.SetParam("samples", "100")
	r.Counter("worlds.sampled").Add(100)
	r.Gauge("pool.workers").Set(4)
	r.Histogram("worlds.cascade_size").Observe(7)
	sp := r.StartSpan("index.build")
	sp.AddUnits(100)
	sp.End()

	b, err := r.Report().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rt Report
	if err := json.Unmarshal(b, &rt); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if rt.Schema != ReportSchema {
		t.Errorf("schema = %q", rt.Schema)
	}
	if rt.RunInfo.Tool != "sphere" || rt.RunInfo.GraphHash != "00000000deadbeef" {
		t.Errorf("run info = %+v", rt.RunInfo)
	}
	if rt.RunInfo.Seed == nil || *rt.RunInfo.Seed != 42 {
		t.Errorf("seed = %v", rt.RunInfo.Seed)
	}
	if rt.RunInfo.SamplesAchieved != 100 || rt.RunInfo.Params["samples"] != "100" {
		t.Errorf("run info = %+v", rt.RunInfo)
	}
	if rt.Counters["worlds.sampled"] != 100 || rt.Gauges["pool.workers"] != 4 {
		t.Errorf("metrics = %+v / %+v", rt.Counters, rt.Gauges)
	}
	if len(rt.Spans) != 1 || rt.Spans[0].Name != "index.build" || rt.Spans[0].Units != 100 {
		t.Errorf("spans = %+v", rt.Spans)
	}
	if rt.RunInfo.GoVersion == "" || rt.RunInfo.NumCPU <= 0 {
		t.Errorf("process facts missing: %+v", rt.RunInfo)
	}
}

func TestWriteTable(t *testing.T) {
	r := New()
	r.SetTool("sphere")
	r.Counter("a.count").Inc()
	r.Gauge("b.gauge").Set(2)
	r.Histogram("c.hist").Observe(3)
	r.StartSpan("phase").End()
	var sb strings.Builder
	r.Report().WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"telemetry report (sphere)", "a.count", "b.gauge", "c.hist", "phase", "counters:", "spans:"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition output for a known
// registry. The format is consumed by real scrapers, so any drift here is a
// breaking change and must be deliberate.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("pool.tasks_done").Add(42)
	r.Counter("worlds.sampled").Add(7)
	r.Gauge("pool.workers").Set(4)
	h := r.Histogram("worlds.cascade_size")
	for _, v := range []int64{1, 2, 3, 8, 1000} {
		h.Observe(v)
	}

	var sb strings.Builder
	r.WritePrometheus(&sb)
	golden := `# TYPE soi_pool_tasks_done_total counter
soi_pool_tasks_done_total 42
# TYPE soi_worlds_sampled_total counter
soi_worlds_sampled_total 7
# TYPE soi_pool_workers gauge
soi_pool_workers 4
# TYPE soi_worlds_cascade_size histogram
soi_worlds_cascade_size_bucket{le="1"} 1
soi_worlds_cascade_size_bucket{le="3"} 3
soi_worlds_cascade_size_bucket{le="15"} 4
soi_worlds_cascade_size_bucket{le="1023"} 5
soi_worlds_cascade_size_bucket{le="+Inf"} 5
soi_worlds_cascade_size_sum 1014
soi_worlds_cascade_size_count 5
`
	if got := sb.String(); got != golden {
		t.Errorf("prometheus text drifted.\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestPrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Errorf("nil registry rendered %q", sb.String())
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"pool.tasks_done": "soi_pool_tasks_done",
		"a-b c.d":         "soi_a_b_c_d",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestServe boots the debug endpoint on an ephemeral port and checks that
// /metrics, /debug/vars, and /debug/pprof respond — the same surface a user
// reaches with curl during a -debug-addr run.
func TestServe(t *testing.T) {
	r := New()
	r.Counter("worlds.sampled").Add(5)
	PublishExpvar("soi-test-serve", r)
	ds, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "soi_worlds_sampled_total 5") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ctype)
	}

	code, body, _ = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "soi-test-serve") {
		t.Errorf("/debug/vars: code=%d", code)
	}

	code, body, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}

	// /debug/pprof/profile with a tiny window proves CPU profiling is
	// servable end to end.
	code, body, _ = get("/debug/pprof/profile?seconds=1")
	if code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/profile: code=%d len=%d", code, len(body))
	}
}

// TestPublishExpvarRebind: publishing twice must not panic, and the second
// registry must win.
func TestPublishExpvarRebind(t *testing.T) {
	r1 := New()
	r1.Counter("x.count").Add(1)
	r2 := New()
	r2.Counter("x.count").Add(2)
	PublishExpvar("soi-test-rebind", r1)
	PublishExpvar("soi-test-rebind", r2)
	v := expvar.Get("soi-test-rebind")
	if v == nil {
		t.Fatal("expvar missing")
	}
	var rep Report
	if err := json.Unmarshal([]byte(v.String()), &rep); err != nil {
		t.Fatalf("expvar output is not report JSON: %v", err)
	}
	if rep.Counters["x.count"] != 2 {
		t.Errorf("expvar bound to stale registry: %+v", rep.Counters)
	}
}

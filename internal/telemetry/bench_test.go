package telemetry

import "testing"

// The disabled-telemetry contract: a nil handle costs a nil check per
// update, a few hundred picoseconds. These benchmarks pin that; the
// end-to-end version lives in internal/worlds (BenchmarkSampleCascadeMetered)
// where the handles sit inside the real sampling hot loop.

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkCounterEnabledParallel(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// promName maps a dotted metric name to a Prometheus-safe identifier:
// "pool.tasks_done" → "soi_pool_tasks_done". Counters additionally get the
// conventional _total suffix from WritePrometheus.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("soi_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: metric families are
// sorted by name, histogram buckets are cumulative and ascending. A nil
// registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	r.mu.Unlock()

	for _, name := range sortedNames(counters) {
		pn := promName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}
	for _, name := range sortedNames(gauges) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name])
	}
	for _, name := range sortedNames(hists) {
		pn := promName(name)
		h := hists[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Le, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}

// Handler returns an http.Handler serving WritePrometheus output.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

var expvarMu sync.Mutex

// PublishExpvar publishes the registry's report under the given expvar
// name. expvar.Publish panics on duplicate names, so re-publishing (tests,
// repeated runs in one process) silently rebinds instead: the most recently
// published registry wins.
func PublishExpvar(name string, r *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if v := expvar.Get(name); v != nil {
		if f, ok := v.(*expvarFunc); ok {
			f.mu.Lock()
			f.reg = r
			f.mu.Unlock()
			return
		}
		return // name taken by something else; leave it alone
	}
	f := &expvarFunc{reg: r}
	expvar.Publish(name, f)
}

type expvarFunc struct {
	mu  sync.Mutex
	reg *Registry
}

func (f *expvarFunc) String() string {
	f.mu.Lock()
	reg := f.reg
	f.mu.Unlock()
	b, err := reg.Report().JSON()
	if err != nil {
		return "{}"
	}
	return strings.TrimSuffix(string(b), "\n")
}

// DebugServer is a running debug HTTP endpoint; see Serve.
type DebugServer struct {
	Addr string // actual listen address (resolves ":0")
	srv  *http.Server
	done chan struct{}
}

// Serve starts an HTTP server on addr (e.g. "localhost:6060" or ":0")
// exposing:
//
//	/metrics       Prometheus text exposition of this registry
//	/debug/vars    expvar JSON (includes the registry if published)
//	/debug/pprof/  the full net/http/pprof suite (profile, heap, trace, ...)
//
// The mux is private, so pprof is only reachable through this listener and
// never leaks onto http.DefaultServeMux consumers. Serve returns once the
// listener is bound; the caller owns Close.
func Serve(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		// ErrServerClosed is the normal Close path; anything else is lost
		// (this is a best-effort debug endpoint).
		_ = ds.srv.Serve(ln)
	}()
	return ds, nil
}

// Close shuts the debug server down and waits for its goroutine to exit.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	err := d.srv.Close()
	<-d.done
	return err
}
